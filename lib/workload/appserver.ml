module Rng = Stats.Rng

type params = {
  threads : int;
  handler_regions : int;
  eips_per_region : int;
  session_bytes : int;
  oldgen_bytes : int;
}

let default_params =
  {
    threads = 8;
    handler_regions = 9;
    eips_per_region = 3400;
    session_bytes = 32 lsl 20;
    oldgen_bytes = 48 lsl 20;
  }

let region_base = 2300

let model ?(params = default_params) ?(name = "sjas") ?addr_base ~seed () =
  let code = Code_map.create () in
  let space = Dbengine.Addr_space.create ?base:addr_base () in
  let rng = Rng.create seed in
  (* Request-handler phases: one per JIT-compiled handler region, each a
     few quanta long, with session-locality drift shared via the rate
     walk.  GC interleaves as a short chase burst over the old
     generation. *)
  let handler i =
    Synth.phase
      ~label:(Printf.sprintf "handler%d" i)
      ~region:(region_base + i) ~n_eips:params.eips_per_region ~eip_skew:0.8
      ~work_bytes:params.session_bytes ~pattern:Synth.Random ~refs_per_kinstr:300.0
      ~hot_frac:0.965 ~write_frac:0.35 ~branches_per_kinstr:140.0 ~branch_entropy:0.12
      ~duration_quanta:(2, 6)
      ~rate_mod:(Synth.Walk { step = 0.035; lo = 0.8; hi = 1.25 })
      ()
  in
  let gc =
    Synth.phase ~label:"gc" ~region:(region_base + params.handler_regions)
      ~n_eips:2400 ~eip_skew:1.0 ~work_bytes:params.oldgen_bytes ~pattern:Synth.Chase
      ~refs_per_kinstr:420.0 ~hot_frac:0.94 ~write_frac:0.2 ~branches_per_kinstr:90.0
      ~branch_entropy:0.1 ~duration_quanta:(3, 9) ()
  in
  let phases =
    Array.append (Array.init params.handler_regions handler) [| gc |]
  in
  let threads =
    Array.init params.threads (fun tid -> Synth.thread rng ~code ~space ~phases ~tid)
  in
  Model.make ~name ~code ~threads
    ~switch_period:90_000 (* ~5000 switches/s *)
    ~os_per_switch:6_000 ~os_per_io:4_000 ~pollute_on_switch:0.3 ()
