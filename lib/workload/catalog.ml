type kind = Spec | Odb_h of int | Odb_c | Sjas

type entry = {
  name : string;
  kind : kind;
  expected_quadrant : int;
  build : seed:int -> scale:float -> Model.t;
}

(* Designed quadrants for the ODB-H queries: index-scan plans in Q-III,
   multi-phase plans in Q-IV, scan+aggregate plans in Q-II, trivial
   cache-resident queries in Q-I (synthesis documented in DESIGN.md). *)
let odb_h_quadrant q =
  match q with
  | 2 | 16 | 17 | 18 | 19 | 20 | 21 -> 3
  | 3 | 4 | 5 | 7 | 8 | 9 | 10 | 12 | 13 -> 4
  | 1 | 6 | 14 | 15 -> 2
  | 11 | 22 -> 1
  | _ -> invalid_arg "odb_h_quadrant"

let scaled_oltp ~seed ~scale =
  let p = { Oltp.default_params with scale } in
  Oltp.model ~params:p ~seed ()

let scaled_sjas ~seed ~scale =
  let p =
    if scale >= 1.0 then Appserver.default_params
    else
      {
        Appserver.default_params with
        session_bytes =
          max (1 lsl 20) (int_of_float (float_of_int Appserver.default_params.session_bytes *. scale));
        oldgen_bytes =
          max (1 lsl 20) (int_of_float (float_of_int Appserver.default_params.oldgen_bytes *. scale));
      }
  in
  Appserver.model ~params:p ~seed ()

let scaled_dss q ~seed ~scale =
  let p = { Dss.default_params with scale } in
  Dss.model ~params:p ~seed ~query:q ()

let all =
  let servers =
    [|
      { name = "odb_c"; kind = Odb_c; expected_quadrant = 1; build = scaled_oltp };
      { name = "sjas"; kind = Sjas; expected_quadrant = 3; build = scaled_sjas };
    |]
  in
  let spec =
    Array.map
      (fun n ->
        {
          name = n;
          kind = Spec;
          expected_quadrant = Spec.expected_quadrant n;
          build = (fun ~seed ~scale -> ignore scale; Spec.model ~seed n);
        })
      Spec.names
  in
  let odbh =
    Array.init Dbengine.Tpch.n_queries (fun i ->
        let q = i + 1 in
        {
          name = Printf.sprintf "odb_h_q%d" q;
          kind = Odb_h q;
          expected_quadrant = odb_h_quadrant q;
          build = scaled_dss q;
        })
  in
  let entries = Array.concat [ servers; spec; odbh ] in
  (* Listing order is a published invariant: sorted by name, so zoo
     manifests, atlas rows and `repro workloads` can never depend on
     registration order. *)
  Array.sort (fun a b -> String.compare a.name b.name) entries;
  entries

let names = Array.map (fun e -> e.name) all
let find_opt name = Array.find_opt (fun e -> e.name = name) all

let find name =
  match find_opt name with
  | Some e -> e
  | None -> raise Not_found

let server_workloads = Array.of_list (List.filter (fun e -> e.kind = Odb_c || e.kind = Sjas) (Array.to_list all))
let spec_workloads = Array.of_list (List.filter (fun e -> e.kind = Spec) (Array.to_list all))

let odb_h_workloads =
  Array.of_list
    (List.filter (fun e -> match e.kind with Odb_h _ -> true | Spec | Odb_c | Sjas -> false)
       (Array.to_list all))
