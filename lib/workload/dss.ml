module Sink = Dbengine.Sink
module Tpch = Dbengine.Tpch
module Query = Dbengine.Query

type params = {
  scale : float;
  threads : int;
  buf_pages : int;
}

let default_params = { scale = 1.0; threads = 1; buf_pages = 4096 }

let eips_per_op = 1100

let make_model ~params ~seed ~name ~plan_of_db ~query () =
  let db = Tpch.create ~scale:params.scale ~buf_pages:params.buf_pages ~seed () in
  let code = Code_map.create () in
  let base = Tpch.region_base query in
  for i = 0 to 7 do
    Code_map.register code ~region:(base + i) ~n_eips:eips_per_op ~skew:0.9 ()
  done;
  let make_thread tid =
    let plan = plan_of_db db in
    let fill sink ~budget =
      let start = Sink.total_instrs sink in
      let blocked = ref false in
      while (not !blocked) && Sink.total_instrs sink - start < budget do
        match Query.step plan sink with
        | Query.More | Query.Query_done -> ()
        | Query.Blocked -> blocked := true
      done;
      if !blocked then `Blocked else `Ok
    in
    { Model.tid; fill }
  in
  let threads = Array.init params.threads make_thread in
  Model.make ~name ~code ~threads
    ~switch_period:1_500_000 (* far lower switch rate than ODB-C *)
    ~os_per_switch:8_000 ~os_per_io:2_500 ~pollute_on_switch:0.25 ()

let q18_model ?(params = default_params) ~seed ~access () =
  make_model ~params ~seed
    ~name:(Printf.sprintf "odb_h_q18[%s]" (Dbengine.Optimizer.to_string access))
    ~plan_of_db:(fun db -> Tpch.q18_variant db ~access)
    ~query:18 ()

let model ?(params = default_params) ?name ?addr_base ~seed ~query () =
  if query < 1 || query > Tpch.n_queries then invalid_arg "Dss.model: query out of 1..22";
  let db = Tpch.create ~scale:params.scale ~buf_pages:params.buf_pages ?addr_base ~seed () in
  let code = Code_map.create () in
  let base = Tpch.region_base query in
  (* Register generously: up to 8 operator regions per query. *)
  for i = 0 to 7 do
    Code_map.register code ~region:(base + i) ~n_eips:eips_per_op ~skew:0.9 ()
  done;
  let make_thread tid =
    let plan = Tpch.query db query in
    let fill sink ~budget =
      let start = Sink.total_instrs sink in
      let blocked = ref false and stop = ref false in
      while (not !blocked) && (not !stop) && Sink.total_instrs sink - start < budget do
        match Query.step plan sink with
        | Query.More -> ()
        | Query.Blocked -> blocked := true
        | Query.Query_done -> ()
      done;
      if !blocked then `Blocked else `Ok
    in
    { Model.tid; fill }
  in
  let threads = Array.init params.threads make_thread in
  Model.make
    ~name:(match name with Some n -> n | None -> Printf.sprintf "odb_h_q%d" query)
    ~code ~threads
    ~switch_period:1_500_000 (* far lower switch rate than ODB-C *)
    ~os_per_switch:8_000 ~os_per_io:2_500 ~pollute_on_switch:0.25 ()
