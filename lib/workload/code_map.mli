(** Code-region registry: maps abstract region ids (one per operator /
    phase / subsystem) to simulated EIP ranges.

    Every region owns a disjoint 1 MB slice of the code address space and
    a popularity distribution over its EIPs (Zipf-ish: a few hot basic
    blocks, a long tail).  The registry answers two questions per sampling
    quantum: {e which EIP does the sampler record} (weighted draw over the
    active regions) and {e which instruction-cache lines does the fetch
    stream touch}. *)

type t

val create : unit -> t

val register : t -> region:int -> n_eips:int -> ?skew:float -> unit -> unit
(** [skew] (default 1.0) is the Zipf exponent of EIP popularity inside the
    region.  Registering the same region twice is an error. *)

val registered : t -> region:int -> bool

val union : ?shared:int list -> t -> t -> t
(** Disjoint union of two registries (the multi-tenant zoo scenarios run
    two workloads' threads over one merged code map).  Entries are shared
    structurally.  Regions listed in [shared] (e.g. the conventional OS
    region) may appear in both maps, in which case the left map's entry
    wins; any other collision raises [Invalid_argument]. *)

val n_eips : t -> region:int -> int
val total_eips : t -> int

val draw_eip : t -> Stats.Rng.t -> region:int -> int
(** Random EIP from the region's popularity distribution. *)

val eip_region : int -> int
(** Recover the region id an EIP belongs to (inverse of the address
    layout). *)

val code_lines :
  t -> Stats.Rng.t -> region_instrs:(int * int) array -> max_lines:int ->
  int array * float
(** Build the quantum's instruction-fetch line sample: up to [max_lines]
    line addresses drawn across the active regions in proportion to their
    instruction counts, plus the weight each sampled line-fetch stands
    for.  The weight is calibrated so the total fetch-event count is
    [total instrs / instrs_per_line_fetch]. *)

val instrs_per_line_fetch : float
(** Model constant: average retired instructions per fresh I-cache line
    fetch (captures straight-line density and loop reuse). *)
