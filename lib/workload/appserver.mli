(** SjAS: the SPECjAppServer-like middle-tier model.

    Java application-server behaviour per the paper: a very large, JIT-
    grown code footprint (~30k unique EIPs spread over many handler
    regions), session objects scattered across a heap bigger than the L3,
    allocation-heavy request handling, and short garbage-collection bursts.
    Request phases are much shorter than one EIPV interval, so every
    interval samples nearly the same code mix; the CPI variance that
    remains comes from drifting session locality (a random walk invisible
    to the EIPs) plus the GC bursts — hence moderate variance with poor
    EIP predictability (quadrant Q-III, RE ~ 0.8-1.0 per Figure 2). *)

type params = {
  threads : int;
  handler_regions : int;
  eips_per_region : int;
  session_bytes : int;
  oldgen_bytes : int;
}

val default_params : params

val model : ?params:params -> ?name:string -> ?addr_base:int -> seed:int -> unit -> Model.t
(** [name] (default ["sjas"]) labels the model for per-scenario
    {!Stats.Rng.split_label} streams; [addr_base] relocates the simulated
    heap (multi-tenant zoo scenarios). *)

