module Rng = Stats.Rng
module Dist = Stats.Dist

(* Address layout: region r owns EIPs [code_base + r*2^20, ...); EIPs are
   16 bytes apart (bundle-sized), so a region holds at most 65536 EIPs. *)
let code_base = 0x4000_0000
let region_shift = 20
let eip_stride = 16
let max_eips_per_region = 1 lsl (region_shift - 4)

let instrs_per_line_fetch = 30.0

type entry = {
  n_eips : int;
  base : int;
  sampler : Dist.categorical;
      (* popularity over EIP indices; also used for line sampling *)
}

type t = { entries : (int, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

let register t ~region ~n_eips ?(skew = 1.0) () =
  if Hashtbl.mem t.entries region then
    invalid_arg (Printf.sprintf "Code_map.register: region %d already registered" region);
  if n_eips <= 0 || n_eips > max_eips_per_region then
    invalid_arg "Code_map.register: n_eips out of range";
  if region < 0 then invalid_arg "Code_map.register: negative region";
  let weights = Array.init n_eips (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) skew) in
  (* Scatter popularity ranks across the region so hot EIPs are not all on
     the same cache lines. *)
  let perm_weights = Array.make n_eips 0.0 in
  Array.iteri (fun k w -> perm_weights.(k * 7919 mod n_eips) <- w) weights;
  Hashtbl.add t.entries region
    {
      n_eips;
      base = code_base + (region lsl region_shift);
      sampler = Dist.categorical perm_weights;
    }

let registered t ~region = Hashtbl.mem t.entries region

let union ?(shared = []) a b =
  let t = create () in
  let add_all src =
    List.iter
      (fun (region, e) ->
        match Hashtbl.find_opt t.entries region with
        | None -> Hashtbl.add t.entries region e
        | Some _ when List.mem region shared -> ()
        | Some _ ->
            invalid_arg
              (Printf.sprintf "Code_map.union: region %d registered in both maps" region))
      (Stats.Det.hashtbl_bindings src.entries)
  in
  add_all a;
  add_all b;
  t

let entry t region =
  match Hashtbl.find_opt t.entries region with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Code_map: region %d not registered" region)

let n_eips t ~region = (entry t region).n_eips

let total_eips t =
  List.fold_left (fun acc (_, e) -> acc + e.n_eips) 0 (Stats.Det.hashtbl_bindings t.entries)

let draw_eip t rng ~region =
  let e = entry t region in
  e.base + (Dist.categorical_draw e.sampler rng * eip_stride)

let eip_region eip = (eip - code_base) lsr region_shift

let code_lines t rng ~region_instrs ~max_lines =
  let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 region_instrs in
  if total = 0 then ([||], 0.0)
  else begin
    let lines = ref [] and count = ref 0 in
    Array.iter
      (fun (region, w) ->
        let e = entry t region in
        (* This region's share of the line budget, at least 1 sample. *)
        let share = max 1 (max_lines * w / total) in
        for _ = 1 to share do
          if !count < max_lines then begin
            let eip = e.base + (Dist.categorical_draw e.sampler rng * eip_stride) in
            lines := eip land lnot 63 :: !lines;
            incr count
          end
        done)
      region_instrs;
    let fetch_events = float_of_int total /. instrs_per_line_fetch in
    let weight = if !count = 0 then 0.0 else fetch_events /. float_of_int !count in
    (Array.of_list !lines, weight)
  end
