module Rng = Stats.Rng
module Dist = Stats.Dist
module Sink = Dbengine.Sink
module Heap = Dbengine.Heap
module Btree = Dbengine.Btree

type params = {
  scale : float;
  threads : int;
  buf_pages : int;
  probes_per_txn : int;
  instrs_per_txn : int;
  yield_prob : float;
  key_skew : float;
}

let default_params =
  {
    scale = 1.0;
    threads = 12;
    buf_pages = 6_000;
    probes_per_txn = 30;
    instrs_per_txn = 4_000;
    yield_prob = 0.014;
    key_skew = 0.0;
  }

let region_base = 2000
let n_regions = 12
let eips_per_region = 1800

(* Transaction mix loosely after TPC-C: each type executes a different
   subset of the executor's code regions. *)
let txn_types =
  [|
    ("new_order", 0.45, [ 0; 1; 2; 3 ]);
    ("payment", 0.43, [ 0; 4; 5 ]);
    ("order_status", 0.04, [ 0; 6; 7 ]);
    ("delivery", 0.04, [ 0; 8; 9 ]);
    ("stock_level", 0.04, [ 0; 10; 11 ]);
  |]

(* Adversarial B-tree key skew: concentrate probes on a hot key prefix.
   [skew = 0] is (exactly) the historical uniform draw; larger values bend
   the distribution towards key 0, so hot index paths stay buffer- and
   cache-resident while the tail still misses — CPI then depends on the
   probe mix, not on the (unchanged) executor code. *)
let draw_key trng ~skew n =
  if skew <= 0.0 then Rng.int trng n
  else begin
    let u = Rng.float trng 1.0 in
    min (n - 1) (int_of_float (Float.pow u (1.0 +. (4.0 *. skew)) *. float_of_int n))
  end

let model ?(params = default_params) ?(name = "odb_c") ?addr_base ~seed () =
  if params.key_skew < 0.0 || params.key_skew > 1.0 then
    invalid_arg "Oltp.model: key_skew out of [0,1]";
  let code = Code_map.create () in
  for r = 0 to n_regions - 1 do
    Code_map.register code ~region:(region_base + r) ~n_eips:eips_per_region ~skew:0.9 ()
  done;
  let space = Dbengine.Addr_space.create ?base:addr_base () in
  let rng = Rng.create seed in
  let rows base = max 1024 (int_of_float (float_of_int base *. params.scale)) in
  let accounts = Heap.create space ~name:"accounts" ~rows:(rows 640_000) ~row_bytes:100 in
  let index =
    let n = accounts.Heap.rows in
    let bt =
      Btree.create ~fanout:32 ~node_bytes:512
        ~base_addr:(Dbengine.Addr_space.alloc space ~bytes:(n * 40))
        ()
    in
    Btree.bulk_load bt (Array.init n (fun k -> (k, k * 2654435761 mod n)));
    bt
  in
  let log = Heap.create space ~name:"redo_log" ~rows:(rows 200_000) ~row_bytes:64 in
  let buf = Dbengine.Bufcache.create ~pages:params.buf_pages ~page_bytes:8192 in
  let mix = Dist.categorical (Array.map (fun (_, p, _) -> p) txn_types) in
  let log_cursor = ref 0 in
  let make_thread tid =
    let trng = Rng.split rng in
    let fill sink ~budget =
      let start = Sink.total_instrs sink in
      let blocked = ref false in
      while (not !blocked) && Sink.total_instrs sink - start < budget do
        (* One transaction. *)
        let _, _, regions = txn_types.(Dist.categorical_draw mix trng) in
        let nregions = List.length regions in
        List.iter
          (fun r ->
            Sink.instrs sink ~region:(region_base + r) (params.instrs_per_txn / nregions))
          regions;
        for _ = 1 to params.probes_per_txn do
          (* Uniformly random key by default: no locality, so misses
             spread evenly over the whole run.  [key_skew] bends this. *)
          let key = draw_key trng ~skew:params.key_skew (Btree.n_keys index) in
          let path, row = Btree.find_trace index key in
          List.iter (fun a -> Sink.data_ref sink a) path;
          Sink.branch sink ~pc:(region_base * 1024) ~taken:(key land 1 = 0);
          match row with
          | Some r when r < accounts.Heap.rows ->
              let addr = Heap.addr_of_row accounts r in
              Sink.data_ref sink ~write:(Rng.bernoulli trng 0.3) addr;
              if not (Dbengine.Bufcache.touch buf addr) then
                if Rng.bernoulli trng params.yield_prob then begin
                  Sink.io_wait sink;
                  blocked := true
                end
          | Some _ | None -> ()
        done;
        (* Log append: sequential writes, always cached. *)
        let log_row = !log_cursor mod log.Heap.rows in
        log_cursor := !log_cursor + 1;
        Sink.data_ref sink ~write:true (Heap.addr_of_row log log_row);
        (* Commit branch. *)
        Sink.branch sink ~pc:((region_base * 1024) + 8) ~taken:true
      done;
      if !blocked then `Blocked else `Ok
    in
    { Model.tid; fill }
  in
  let threads = Array.init params.threads make_thread in
  Model.make ~name ~code ~threads
    ~switch_period:170_000 (* ~2600 switches/s at the paper's clock/CPI *)
    ~os_per_switch:4_500 ~os_per_io:4_000 ~pollute_on_switch:0.4 ()
