(** The full benchmark catalog: the 50 workloads of the paper's Table 2
    (26 SPEC CPU2K, 22 ODB-H queries, ODB-C, SjAS). *)

type kind = Spec | Odb_h of int | Odb_c | Sjas

type entry = {
  name : string;
  kind : kind;
  expected_quadrant : int;  (** designed quadrant, 1..4 *)
  build : seed:int -> scale:float -> Model.t;
      (** [scale] shrinks data sets for fast tests (1.0 = full). *)
}

val all : entry array
(** The 50 entries (ODB-C, SjAS, 26 SPEC, Q1..Q22), sorted by name.  The
    sorted order is an invariant consumers may rely on: zoo manifests and
    atlas rows derive their ordering from it. *)

val names : string array
(** [all]'s names, in the same (sorted) order. *)

val find : string -> entry
(** Raises [Not_found] on unknown names. *)

val find_opt : string -> entry option

val server_workloads : entry array
val spec_workloads : entry array
val odb_h_workloads : entry array
