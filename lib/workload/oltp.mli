(** ODB-C: the order-entry OLTP workload (TPC-C-like shape).

    Many identical server threads execute short transactions against a
    database far larger than any cache: each transaction performs a
    handful of uniformly-random B-tree probes and row touches, appends to
    a log, and runs executor code drawn from a very wide code footprint.
    Misses in the buffer cache block the thread on I/O, driving the high
    context-switch rate and the ~15% OS time the paper reports.  The
    resulting hardware behaviour is the paper's Q-I signature: CPI
    dominated by uniformly-occurring L3 misses, essentially independent of
    the EIPs (Sections 5 and 5.1). *)

type params = {
  scale : float;  (** table-size multiplier (1.0 = default experiment) *)
  threads : int;
  buf_pages : int;  (** SGA size in 8 KB pages *)
  probes_per_txn : int;
  instrs_per_txn : int;
  yield_prob : float;  (** probability a buffer miss blocks the thread *)
  key_skew : float;
      (** B-tree probe-key skew in [0,1]: 0 (the default) is the paper's
          uniform key draw, bit-identical to the historical behaviour;
          larger values concentrate probes on a hot key prefix, an
          adversarial access pattern the workload zoo sweeps. *)
}

val default_params : params

val model : ?params:params -> ?name:string -> ?addr_base:int -> seed:int -> unit -> Model.t
(** Builds the database (accounts heap + index + log), registers the
    executor code regions (~20k EIPs in total) and returns the workload.
    [name] (default ["odb_c"]) labels the model — the zoo gives every
    generated scenario its own name so {!Stats.Rng.split_label} streams
    stay per-scenario.  [addr_base] relocates the simulated data heap so
    multi-tenant scenarios occupy disjoint address ranges. *)

