(** ODB-H: decision-support workloads, one per query.

    Each model runs a small number of identical threads, each executing
    its own instance of the same query plan against a shared database and
    buffer cache (the paper notes ODB-H assigns one thread per operator
    instance, so several identical threads run concurrently and thread
    switching is benign — Section 6.1). *)

type params = {
  scale : float;
  threads : int;
  buf_pages : int;
}

val default_params : params

val model :
  ?params:params -> ?name:string -> ?addr_base:int -> seed:int -> query:int -> unit -> Model.t
(** [query] in 1..22.  Registers one code region per plan operator; region
    EIP counts are sized so a query exposes a few thousand unique EIPs
    (the paper counts 4129 for Q13).  [name] (default ["odb_h_q<query>"])
    labels the model for per-scenario {!Stats.Rng.split_label} streams;
    [addr_base] relocates the database's address space (multi-tenant zoo
    scenarios). *)

val q18_model :
  ?params:params ->
  seed:int ->
  access:Dbengine.Optimizer.access_path ->
  unit ->
  Model.t
(** Q18 with a forced access path (the Section 6.2 counterfactual). *)
