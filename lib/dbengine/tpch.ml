module Rng = Stats.Rng
module Dist = Stats.Dist

type db = {
  space : Addr_space.t;
  ctx : Ops.ctx;
  buf : Bufcache.t;
  rng : Rng.t;
  lineitem : Heap.t;
  orders : Heap.t;
  customer : Heap.t;
  part : Heap.t;
  supplier : Heap.t;
  lineitem_idx : Btree.t;
  orders_idx : Btree.t;
  part_idx : Btree.t;
}

let n_queries = 22

let region_base q = 100 * q

(* Spread index values across the heap so skewed keys hit random pages. *)
let scatter_value ~rows k = k * 2654435761 mod rows

let build_index space ~rows ~node_bytes =
  let bt =
    Btree.create ~fanout:32 ~node_bytes
      ~base_addr:(Addr_space.alloc space ~bytes:(rows * node_bytes / 16))
      ()
  in
  Btree.bulk_load bt (Array.init rows (fun k -> (k, scatter_value ~rows k)));
  bt

let create ?(scale = 1.0) ?(buf_pages = 4096) ?addr_base ~seed () =
  if scale <= 0.0 then invalid_arg "Tpch.create: scale must be positive";
  let space = Addr_space.create ?base:addr_base () in
  let rng = Rng.create seed in
  let buf = Bufcache.create ~pages:buf_pages ~page_bytes:8192 in
  let rows base = max 64 (int_of_float (float_of_int base *. scale)) in
  let lineitem = Heap.create space ~name:"lineitem" ~rows:(rows 360_000) ~row_bytes:120 in
  let orders = Heap.create space ~name:"orders" ~rows:(rows 120_000) ~row_bytes:120 in
  let customer = Heap.create space ~name:"customer" ~rows:(rows 12_000) ~row_bytes:180 in
  let part = Heap.create space ~name:"part" ~rows:(rows 200_000) ~row_bytes:150 in
  let supplier = Heap.create space ~name:"supplier" ~rows:(rows 800) ~row_bytes:150 in
  (* The lineitem index is deliberately larger than the biggest simulated
     L3 (1 KB nodes -> ~5-6 MB) so index-scan locality decides its hit
     rate. *)
  let lineitem_idx = build_index space ~rows:lineitem.Heap.rows ~node_bytes:1024 in
  let orders_idx = build_index space ~rows:orders.Heap.rows ~node_bytes:1024 in
  let part_idx = build_index space ~rows:part.Heap.rows ~node_bytes:1024 in
  let ctx = { Ops.rng = Rng.split rng; buf = Some buf; yield_prob = 0.002 } in
  { space; ctx; buf; rng; lineitem; orders; customer; part; supplier; lineitem_idx;
    orders_idx; part_idx }

(* Drifting locality: keys cluster in a window whose size random-walks
   between "fits in cache" and "far too big", changing regime slowly
   relative to an EIPV interval.  Recently-visited B-tree regions are
   warm, fresh regions cold, so per-interval CPI depends on the data, not
   the code (the paper's explanation of Q18: "index based table scans can
   have a highly unpredictable behavior due to the randomness of the tree
   traversal"). *)
let walking_key n ~window ~jump_prob =
  let centre = ref 0 in
  (* The window-size walk is bounded so that it straddles the capacity of
     the large caches: the lower bound keeps the hot B-tree subtree around
     the L2/L3 boundary, the upper bound is the whole key space.  The
     regime therefore oscillates between "descends mostly hit" and
     "descends mostly miss" on a timescale of many EIPV intervals. *)
  let min_size = float_of_int (max 64 (min window (n / 8))) in
  let max_size = float_of_int n in
  let size = ref (sqrt (min_size *. max_size)) in
  let draws = ref 0 in
  fun rng ->
    incr draws;
    (* Regime steps are rare and large so a locality regime persists
       across several EIPV intervals instead of averaging out inside
       one. *)
    if !draws land 511 = 0 then begin
      let f = 1.0 +. ((Rng.float rng 2.0 -. 1.0) *. 0.45) in
      size := Float.max min_size (Float.min max_size (!size *. f))
    end;
    if Rng.bernoulli rng jump_prob then centre := Rng.int rng n;
    let off = Rng.int rng (max 1 (int_of_float !size)) in
    (!centre + off) mod n

let q db n =
  let r i = region_base n + i in
  let ctx = db.ctx in
  let space = db.space in
  let seq = Ops.seq_scan ctx and idx = Ops.index_scan ctx in
  let sort = Ops.sort ctx and join = Ops.hash_join ctx and agg = Ops.aggregate ctx in
  let compute = Ops.compute ctx in
  let li = db.lineitem and ords = db.orders and cust = db.customer in
  let prt = db.part and supp = db.supplier in
  let li_rows = li.Heap.rows in
  let ops =
    match n with
    (* Scan-dominated aggregations. *)
    | 1 -> [| seq ~region:(r 0) ~heap:li ~instr_per_row:71 ();
              seq ~region:(r 1) ~heap:li ~instr_per_row:66 ();
              agg ~region:(r 2) ~space ~src:supp () |]
    | 6 -> [| seq ~region:(r 0) ~heap:li ~instr_per_row:66 ~selectivity:0.02 ();
              seq ~region:(r 1) ~heap:li ~instr_per_row:63 ();
              agg ~region:(r 2) ~space ~src:supp () |]
    | 14 -> [| seq ~region:(r 0) ~heap:li ~instr_per_row:68 ();
               seq ~region:(r 1) ~heap:li ~instr_per_row:64 ();
               agg ~region:(r 2) ~space ~src:supp () |]
    | 15 -> [| seq ~region:(r 0) ~heap:li ~instr_per_row:72 ();
               seq ~region:(r 1) ~heap:li ~instr_per_row:68 ();
               agg ~region:(r 2) ~space ~src:supp () |]
    (* Multi-phase scan/join/sort plans. *)
    | 3 -> [| seq ~region:(r 0) ~heap:cust ~instr_per_row:50 ();
              join ~region:(r 1) ~space ~build:cust ~probe:ords ();
              seq ~region:(r 2) ~heap:li ~instr_per_row:60 ();
              sort ~region:(r 3) ~space ~bytes:(1 lsl 23) ();
              agg ~region:(r 4) ~space ~src:supp () |]
    | 4 -> [| seq ~region:(r 0) ~heap:ords ~instr_per_row:55 ();
              join ~region:(r 1) ~space ~build:ords ~probe:li ();
              agg ~region:(r 2) ~space ~src:ords () |]
    | 5 -> [| seq ~region:(r 0) ~heap:cust ~instr_per_row:50 ();
              join ~region:(r 1) ~space ~build:cust ~probe:ords ();
              join ~region:(r 2) ~space ~build:supp ~probe:li ();
              sort ~region:(r 3) ~space ~bytes:(1 lsl 23) ();
              agg ~region:(r 4) ~space ~src:supp () |]
    | 7 -> [| seq ~region:(r 0) ~heap:li ~instr_per_row:60 ();
              join ~region:(r 1) ~space ~build:supp ~probe:li ();
              sort ~region:(r 2) ~space ~bytes:(1 lsl 21) ();
              agg ~region:(r 3) ~space ~src:ords () |]
    | 8 -> [| seq ~region:(r 0) ~heap:prt ~instr_per_row:45 ();
              join ~region:(r 1) ~space ~build:prt ~probe:li ();
              agg ~region:(r 2) ~space ~src:ords ();
              sort ~region:(r 3) ~space ~bytes:(1 lsl 20) () |]
    | 9 -> [| seq ~region:(r 0) ~heap:prt ~instr_per_row:45 ();
              join ~region:(r 1) ~space ~build:prt ~probe:li ();
              sort ~region:(r 2) ~space ~bytes:(1 lsl 22) () |]
    | 10 -> [| seq ~region:(r 0) ~heap:cust ~instr_per_row:50 ();
               join ~region:(r 1) ~space ~build:cust ~probe:li ();
               sort ~region:(r 2) ~space ~bytes:(1 lsl 23) ();
               agg ~region:(r 3) ~space ~src:supp () |]
    | 12 -> [| seq ~region:(r 0) ~heap:ords ~instr_per_row:55 ();
               join ~region:(r 1) ~space ~build:ords ~probe:li ();
               agg ~region:(r 2) ~space ~src:ords () |]
    | 13 ->
        (* The paper's strong-phase exemplar: scan, join and sort of two
           large tables, executed repeatedly over a large data set. *)
        [| seq ~region:(r 0) ~heap:ords ~instr_per_row:60 ();
           join ~region:(r 1) ~space ~build:cust ~probe:ords ();
           sort ~region:(r 2) ~space ~bytes:(1 lsl 23) ();
           agg ~region:(r 3) ~space ~src:ords () |]
    (* Index-scan plans: B-tree descent under drifting skew. *)
    | 2 -> [| idx ~region:(r 0) ~btree:db.part_idx ~heap:prt
                ~key_gen:(walking_key prt.Heap.rows ~window:10_000 ~jump_prob:0.0006)
                ~probes:1_500_000 ~heap_prob:0.3 ();
              sort ~region:(r 1) ~space ~bytes:(1 lsl 18) () |]
    | 16 -> [| idx ~region:(r 0) ~btree:db.part_idx ~heap:prt
                 ~key_gen:(walking_key prt.Heap.rows ~window:10_000 ~jump_prob:0.0008)
                 ~probes:2_000_000 ~heap_prob:0.3 ();
               agg ~region:(r 1) ~space ~src:supp () |]
    | 17 -> [| idx ~region:(r 0) ~btree:db.lineitem_idx ~heap:li
                 ~key_gen:(walking_key li_rows ~window:30_000 ~jump_prob:0.0005)
                 ~probes:3_000_000 ~instr_per_level:52 ~heap_prob:0.2 ();
               agg ~region:(r 1) ~space ~src:prt () |]
    | 18 ->
        (* The paper's weak-phase exemplar: functionally like Q13 but the
           optimiser picks an index scan; tree-traversal randomness makes
           CPI vary under constant code. *)
        [| idx ~region:(r 0) ~btree:db.lineitem_idx ~heap:li
             ~key_gen:(walking_key li_rows ~window:30_000 ~jump_prob:0.0004)
             ~probes:4_000_000 ~instr_per_level:58 ~heap_prob:0.15 ();
           join ~region:(r 1) ~space ~build:cust ~probe:ords ();
           sort ~region:(r 2) ~space ~bytes:(1 lsl 17) () |]
    | 19 -> [| idx ~region:(r 0) ~btree:db.lineitem_idx ~heap:li
                 ~key_gen:(walking_key li_rows ~window:30_000 ~jump_prob:0.0007)
                 ~probes:2_400_000 ~instr_per_level:48 ~heap_prob:0.25 ();
               idx ~region:(r 1) ~btree:db.part_idx ~heap:prt
                 ~key_gen:(walking_key prt.Heap.rows ~window:10_000 ~jump_prob:0.001)
                 ~probes:1_200_000 ~heap_prob:0.3 () |]
    | 20 -> [| idx ~region:(r 0) ~btree:db.lineitem_idx ~heap:li
                 ~key_gen:(walking_key li_rows ~window:30_000 ~jump_prob:0.0005)
                 ~probes:3_000_000 ~instr_per_level:54 ~heap_prob:0.2 ();
               seq ~region:(r 1) ~heap:supp ~instr_per_row:45 () |]
    | 21 -> [| idx ~region:(r 0) ~btree:db.lineitem_idx ~heap:li
                 ~key_gen:(walking_key li_rows ~window:30_000 ~jump_prob:0.0008)
                 ~probes:2_500_000 ~instr_per_level:52 ~heap_prob:0.25 ();
               idx ~region:(r 1) ~btree:db.lineitem_idx ~heap:li
                 ~key_gen:(walking_key li_rows ~window:256 ~jump_prob:0.003)
                 ~probes:60_000 () |]
    (* Trivial cache-resident queries. *)
    | 11 -> [| seq ~region:(r 0) ~heap:supp ~instr_per_row:40 ();
               agg ~region:(r 1) ~space ~src:supp ~groups:64 ();
               compute ~region:(r 2) ~instrs:400_000 () |]
    | 22 -> [| seq ~region:(r 0) ~heap:supp ~instr_per_row:42 ();
               agg ~region:(r 1) ~space ~src:supp ~groups:32 ();
               compute ~region:(r 2) ~instrs:500_000 () |]
    | _ -> invalid_arg "Tpch.query: query number out of 1..22"
  in
  Query.create ~name:(Printf.sprintf "Q%d" n) ~ops

let query db n =
  if n < 1 || n > n_queries then invalid_arg "Tpch.query: query number out of 1..22";
  q db n

(* Q18 touches a large share of lineitem ("customers who have EVER placed
   large quantity orders"): at this selectivity a textbook cost model
   prefers the index only marginally -- the fuzzy boundary again. *)
let q18_selectivity = 0.08

let q18_variant db ~access =
  let r i = region_base 18 + i in
  let ctx = db.ctx and space = db.space in
  let li = db.lineitem and ords = db.orders and cust = db.customer in
  let ops =
    match access with
    | Optimizer.Index_scan ->
        [|
          Ops.index_scan ctx ~region:(r 0) ~btree:db.lineitem_idx ~heap:li
            ~key_gen:(walking_key li.Heap.rows ~window:30_000 ~jump_prob:0.0004)
            ~probes:4_000_000 ~instr_per_level:58 ~heap_prob:0.15 ();
          Ops.hash_join ctx ~region:(r 1) ~space ~build:cust ~probe:ords ();
          Ops.sort ctx ~region:(r 2) ~space ~bytes:(1 lsl 17) ();
        |]
    | Optimizer.Seq_scan ->
        [|
          Ops.seq_scan ctx ~region:(r 0) ~heap:li ~instr_per_row:62
            ~selectivity:q18_selectivity ();
          Ops.hash_join ctx ~region:(r 1) ~space ~build:cust ~probe:ords ();
          Ops.sort ctx ~region:(r 2) ~space ~bytes:(1 lsl 23) ();
          Ops.aggregate ctx ~region:(r 3) ~space ~src:db.supplier ();
        |]
  in
  Query.create ~name:(Printf.sprintf "Q18[%s]" (Optimizer.to_string access)) ~ops

let lineitem db = db.lineitem
let lineitem_index db = db.lineitem_idx
