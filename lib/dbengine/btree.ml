type node = {
  id : int;
  mutable keys : int array;
  mutable kind : kind;
}

and kind =
  | Leaf of { mutable values : int array }
  | Internal of { mutable children : node array }

type t = {
  fanout : int;
  node_bytes : int;
  base_addr : int;
  mutable root : node;
  mutable next_id : int;
  mutable n_keys : int;
}

let new_node t keys kind =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  { id; keys; kind }

let create ?(fanout = 32) ~node_bytes ~base_addr () =
  if fanout < 4 then invalid_arg "Btree.create: fanout must be >= 4";
  if node_bytes <= 0 then invalid_arg "Btree.create: node_bytes must be positive";
  let t =
    { fanout; node_bytes; base_addr; root = { id = 0; keys = [||]; kind = Leaf { values = [||] } };
      next_id = 0; n_keys = 0 }
  in
  t.root <- new_node t [||] (Leaf { values = [||] });
  t

let addr_of t node = t.base_addr + (node.id * t.node_bytes)

let bulk_load t pairs =
  if t.n_keys <> 0 then invalid_arg "Btree.bulk_load: tree not empty";
  let n = Array.length pairs in
  if n = 0 then ()
  else begin
    for i = 1 to n - 1 do
      if fst pairs.(i) <= fst pairs.(i - 1) then
        invalid_arg "Btree.bulk_load: keys must be strictly increasing"
    done;
    let per_leaf = max 2 (t.fanout * 3 / 4) in
    (* Build the leaf level. *)
    let leaves = ref [] in
    let i = ref 0 in
    while !i < n do
      let len = min per_leaf (n - !i) in
      let keys = Array.init len (fun j -> fst pairs.(!i + j)) in
      let values = Array.init len (fun j -> snd pairs.(!i + j)) in
      leaves := new_node t keys (Leaf { values }) :: !leaves;
      i := !i + len
    done;
    let level = ref (Array.of_list (List.rev !leaves)) in
    (* Build internal levels until a single root remains.  Separator i of
       an internal node is the smallest key reachable under child i+1 —
       for internal children that is the minimum of the leftmost leaf, not
       the child's own first separator. *)
    let rec min_key node =
      match node.kind with
      | Leaf _ -> node.keys.(0)
      | Internal { children } -> min_key children.(0)
    in
    while Array.length !level > 1 do
      let children = !level in
      let m = Array.length children in
      let per_node = max 2 (t.fanout * 3 / 4) in
      let parents = ref [] in
      let j = ref 0 in
      while !j < m do
        (* Never leave a single orphan child for the last group: shrink the
           current group by one instead (per_node >= 3 keeps len >= 2). *)
        let remaining = m - !j in
        let len =
          if remaining <= per_node then remaining
          else if remaining - per_node = 1 then per_node - 1
          else per_node
        in
        let kids = Array.sub children !j len in
        let keys = Array.init (len - 1) (fun x -> min_key kids.(x + 1)) in
        parents := new_node t keys (Internal { children = kids }) :: !parents;
        j := !j + len
      done;
      level := Array.of_list (List.rev !parents)
    done;
    t.root <- !level.(0);
    t.n_keys <- n
  end

(* Index of the child to descend into: first separator > key determines
   the branch. *)
let child_index keys key =
  let n = Array.length keys in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if key < keys.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let leaf_find keys key =
  let n = Array.length keys in
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      if keys.(mid) = key then Some mid
      else if keys.(mid) < key then go (mid + 1) hi
      else go lo (mid - 1)
  in
  go 0 (n - 1)

let find_trace t key =
  let rec go node acc =
    let acc = addr_of t node :: acc in
    match node.kind with
    | Leaf { values } -> (
        match leaf_find node.keys key with
        | Some i -> (List.rev acc, Some values.(i))
        | None -> (List.rev acc, None))
    | Internal { children } -> go children.(child_index node.keys key) acc
  in
  go t.root []

let find t key = snd (find_trace t key)

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

(* Insertion result: the child either absorbed the key or split, promoting
   a separator and a new right sibling. *)
type ins = Ok | Split of int * node

let insert t ~key ~value =
  let rec go node =
    match node.kind with
    | Leaf lf -> (
        match leaf_find node.keys key with
        | Some i ->
            lf.values.(i) <- value;
            Ok
        | None ->
            let pos = child_index node.keys key in
            node.keys <- array_insert node.keys pos key;
            lf.values <- array_insert lf.values pos value;
            t.n_keys <- t.n_keys + 1;
            if Array.length node.keys <= t.fanout then Ok
            else begin
              let n = Array.length node.keys in
              let mid = n / 2 in
              let rkeys = Array.sub node.keys mid (n - mid) in
              let rvals = Array.sub lf.values mid (n - mid) in
              node.keys <- Array.sub node.keys 0 mid;
              lf.values <- Array.sub lf.values 0 mid;
              let right = new_node t rkeys (Leaf { values = rvals }) in
              Split (rkeys.(0), right)
            end)
    | Internal inode -> (
        let ci = child_index node.keys key in
        match go inode.children.(ci) with
        | Ok -> Ok
        | Split (sep, right) ->
            node.keys <- array_insert node.keys ci sep;
            inode.children <- array_insert inode.children (ci + 1) right;
            if Array.length inode.children <= t.fanout then Ok
            else begin
              let nk = Array.length node.keys in
              let mid = nk / 2 in
              let promoted = node.keys.(mid) in
              let rkeys = Array.sub node.keys (mid + 1) (nk - mid - 1) in
              let rchildren =
                Array.sub inode.children (mid + 1) (Array.length inode.children - mid - 1)
              in
              node.keys <- Array.sub node.keys 0 mid;
              inode.children <- Array.sub inode.children 0 (mid + 1);
              let right = new_node t rkeys (Internal { children = rchildren }) in
              Split (promoted, right)
            end)
  in
  match go t.root with
  | Ok -> ()
  | Split (sep, right) ->
      let old_root = t.root in
      t.root <- new_node t [| sep |] (Internal { children = [| old_root; right |] })

let range_trace t ~lo ~hi f =
  let touched = ref [] in
  let rec go node =
    touched := addr_of t node :: !touched;
    match node.kind with
    | Leaf { values } ->
        Array.iteri (fun i k -> if k >= lo && k <= hi then f k values.(i)) node.keys
    | Internal { children } ->
        (* Visit every child whose key range can intersect [lo, hi]. *)
        let first = child_index node.keys lo and last = child_index node.keys hi in
        for i = first to last do
          go children.(i)
        done
  in
  go t.root;
  List.rev !touched

let height t =
  let rec go node = match node.kind with Leaf _ -> 1 | Internal { children } -> 1 + go children.(0) in
  go t.root

let n_keys t = t.n_keys
let footprint_bytes t = t.next_id * t.node_bytes

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec check node depth =
    let sorted a =
      let ok = ref true in
      for i = 1 to Array.length a - 1 do
        if a.(i) <= a.(i - 1) then ok := false
      done;
      !ok
    in
    if not (sorted node.keys) then fail "Btree: node %d keys not strictly sorted" node.id;
    match node.kind with
    | Leaf { values } ->
        if Array.length values <> Array.length node.keys then
          fail "Btree: leaf %d keys/values arity mismatch" node.id;
        if Array.length node.keys > t.fanout then fail "Btree: leaf %d overfull" node.id;
        (depth, Array.length node.keys)
    | Internal { children } ->
        if Array.length children <> Array.length node.keys + 1 then
          fail "Btree: internal %d children arity mismatch" node.id;
        if Array.length children > t.fanout + 1 then fail "Btree: internal %d overfull" node.id;
        let depths = Array.map (fun c -> fst (check c (depth + 1))) children in
        Array.iter
          (fun d -> if d <> depths.(0) then fail "Btree: unbalanced under node %d" node.id)
          depths;
        (* Separator consistency: every key in child i+1 is >= keys.(i),
           every key in child i is < keys.(i). *)
        Array.iteri
          (fun i sep ->
            let rec min_key n =
              match n.kind with
              | Leaf _ -> if Array.length n.keys = 0 then sep else n.keys.(0)
              | Internal { children } -> min_key children.(0)
            in
            let rec max_key n =
              match n.kind with
              | Leaf _ ->
                  if Array.length n.keys = 0 then pred sep else n.keys.(Array.length n.keys - 1)
              | Internal { children } -> max_key children.(Array.length children - 1)
            in
            if max_key children.(i) >= sep then
              fail "Btree: separator %d violated on the left of node %d" sep node.id;
            if min_key children.(i + 1) < sep then
              fail "Btree: separator %d violated on the right of node %d" sep node.id)
          node.keys;
        (depth, Array.length node.keys)
  in
  ignore (check t.root 0);
  (* Count keys. *)
  let rec count node =
    match node.kind with
    | Leaf _ -> Array.length node.keys
    | Internal { children } -> Array.fold_left (fun acc c -> acc + count c) 0 children
  in
  let c = count t.root in
  if c <> t.n_keys then fail "Btree: key count %d does not match recorded %d" c t.n_keys
