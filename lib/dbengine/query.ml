type t = {
  name : string;
  ops : Ops.t array;
  mutable cur : int;
  mutable completed : int;
}

type progress = More | Blocked | Query_done

let create ~name ~ops =
  if Array.length ops = 0 then invalid_arg "Query.create: empty plan";
  { name; ops; cur = 0; completed = 0 }

let name t = t.name

let rec step t sink =
  let op = t.ops.(t.cur) in
  match op.Ops.step sink with
  | Ops.More -> More
  | Ops.Blocked -> Blocked
  | Ops.Done ->
      if t.cur + 1 < Array.length t.ops then begin
        t.cur <- t.cur + 1;
        (* The next operator starts immediately within the same quantum. *)
        step t sink
      end
      else begin
        t.completed <- t.completed + 1;
        Array.iter (fun o -> o.Ops.reset ()) t.ops;
        t.cur <- 0;
        Query_done
      end

let completed t = t.completed
