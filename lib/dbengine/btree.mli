(** In-memory B+-tree with integer keys and values, plus the address trace
    of every traversal.

    Used by index-scan operators: each lookup returns the simulated memory
    addresses of the visited nodes, so that the randomness of tree descent
    over a skewed key distribution shows up as genuine cache behaviour —
    the mechanism the paper blames for Q18's unpredictable CPI
    (Section 6.2, citing the "randomness of the tree traversal"). *)

type t

val create : ?fanout:int -> node_bytes:int -> base_addr:int -> unit -> t
(** [fanout] (default 32) is the maximum number of keys per node. *)

val bulk_load : t -> (int * int) array -> unit
(** Load sorted (key, value) pairs into an empty tree; keys must be
    strictly increasing.  Builds a balanced tree bottom-up. *)

val insert : t -> key:int -> value:int -> unit

val find : t -> int -> int option

val find_trace : t -> int -> int list * int option
(** [(addresses of nodes visited root->leaf, value if found)]. *)

val range_trace : t -> lo:int -> hi:int -> (int -> int -> unit) -> int list
(** Visit all (key, value) with lo <= key <= hi, calling the function on
    each; returns the node addresses touched. *)

val height : t -> int
val n_keys : t -> int
val footprint_bytes : t -> int

val check_invariants : t -> unit
(** Raises [Failure] if ordering, balance or occupancy invariants are
    violated (test hook). *)
