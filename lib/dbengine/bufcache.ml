type t = { cache : Cache_lru.t; page_bytes : int }

let create ~pages ~page_bytes =
  if pages <= 0 then invalid_arg "Bufcache.create: pages must be positive";
  { cache = Cache_lru.create ~capacity:pages; page_bytes }

let touch t addr = Cache_lru.access t.cache (addr / t.page_bytes)

let hit_ratio t =
  let a = Cache_lru.accesses t.cache in
  if a = 0 then 1.0 else float_of_int (Cache_lru.hits t.cache) /. float_of_int a

