(** Cost-based access-path selection.

    The paper traces the Q13/Q18 predictability split to one optimiser
    decision: "the Oracle query optimizer uses a sequential scan in Q13,
    and an index scan operation in Q18" (Section 6.2).  This module
    implements that decision with the textbook cost model — sequential
    I/O is cheap per row but touches every row; an index probe is cheap
    per {e matching} row but pays a B-tree descent and a random heap
    fetch — so the reproduction can ask the counterfactual: what happens
    to Q18's predictability when the optimiser flips? *)

type access_path = Seq_scan | Index_scan

type cost_model = {
  seq_row_cost : float;  (** per-row cost of a sequential scan *)
  index_node_cost : float;  (** per-node cost of a B-tree descent *)
  index_heap_cost : float;  (** per-match random heap fetch *)
}

val choose :
  ?model:cost_model -> rows:int -> selectivity:float -> index_height:int -> unit -> access_path
(** [selectivity] is the matching fraction in [\[0, 1\]].  Picks the
    cheaper path; ties go to the sequential scan (it is
    bandwidth-friendly). *)

val crossover_selectivity : ?model:cost_model -> rows:int -> index_height:int -> unit -> float
(** The selectivity at which the two paths cost the same (0 if the index
    never wins, 1 if it always does). *)

val to_string : access_path -> string
