(** Synthetic DSS database and the 22 ODB-H query plans.

    The schema follows the TPC-H outline the paper's ODB-H derives from
    (lineitem / orders / customer / part / supplier), scaled so the big
    tables exceed the largest simulated L3 by a wide margin while the small
    dimension tables are cache-resident.  Plans are composed from the
    operators in {!Ops}; their shapes implement the paper's taxonomy:

    - {b scan-dominated} plans (Q1, Q6, Q14, Q15): repetitive streaming
      with uniform miss behaviour;
    - {b multi-phase} plans (Q3, Q4, Q5, Q7, Q8, Q9, Q10, Q12, Q13):
      scan / join / sort phases with distinct code and distinct CPI —
      strong EIP-CPI correlation (Section 6.1);
    - {b index-scan} plans (Q2, Q16, Q17, Q18, Q19, Q20, Q21): B-tree
      probes under drifting skewed key distributions — same code, data-
      dependent CPI (Section 6.2);
    - {b trivial} plans (Q11, Q22): small cache-resident lookups with
      near-constant CPI. *)

type db

val create : ?scale:float -> ?buf_pages:int -> ?addr_base:int -> seed:int -> unit -> db
(** [scale] (default 1.0) multiplies all table cardinalities;
    [buf_pages] (default 4096) sizes the buffer cache.  [addr_base]
    relocates the database's simulated address space (multi-tenant zoo
    scenarios give each tenant a disjoint range). *)

val query : db -> int -> Query.t
(** [query db n] with n in 1..22 builds a fresh plan instance. *)

val q18_variant : db -> access:Optimizer.access_path -> Query.t
(** Q18 with the access path forced: [Index_scan] is the plan the paper's
    optimiser chose (weak EIP-CPI correlation); [Seq_scan] is the Q13-like
    counterfactual (strong correlation).  See {!Optimizer}. *)

val q18_selectivity : float
(** The matching fraction Q18's predicate was modelled with; feeding it to
    {!Optimizer.choose} over the lineitem table reproduces the paper's
    optimiser decision. *)

val n_queries : int

val region_base : int -> int
(** First code-region id used by query [n] (regions are
    [region_base n .. region_base n + ops - 1]). *)

val lineitem : db -> Heap.t
val lineitem_index : db -> Btree.t
