(** Database buffer cache (the Oracle SGA in the paper's setup).

    Page-granular LRU cache standing between operators and "disk": a miss
    means the accessing thread blocks on I/O and yields the CPU — the
    mechanism behind the server workloads' high context-switch rates. *)

type t

val create : pages:int -> page_bytes:int -> t
(** Capacity is rounded up so the set count is a power of two. *)

val touch : t -> int -> bool
(** [touch t addr] returns [true] on a buffer hit. *)

val hit_ratio : t -> float
