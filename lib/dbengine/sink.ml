module Gv = Stats.Growvec

type t = {
  mutable instr_total : int;
  regions : (int, int ref) Hashtbl.t;
  addrs : Gv.Int.t;
  writes : Gv.Bool.t;
  branch_pcs : Gv.Int.t;
  branch_taken : Gv.Bool.t;
  mutable io : int;
  mutable extra_refs : int;
  mutable extra_branches : int;
}

type drained = {
  instrs : int;
  region_instrs : (int * int) array;
  addrs : int array;
  writes : bool array;
  branch_pcs : int array;
  branch_taken : bool array;
  io_waits : int;
  extra_refs : int;
  extra_branches : int;
}

let create () =
  {
    instr_total = 0;
    regions = Hashtbl.create 16;
    addrs = Gv.Int.create ~capacity:1024 ();
    writes = Gv.Bool.create ~capacity:1024 ();
    branch_pcs = Gv.Int.create ~capacity:256 ();
    branch_taken = Gv.Bool.create ~capacity:256 ();
    io = 0;
    extra_refs = 0;
    extra_branches = 0;
  }

let instrs (t : t) ~region n =
  if n < 0 then invalid_arg "Sink.instrs: negative count";
  t.instr_total <- t.instr_total + n;
  match Hashtbl.find_opt t.regions region with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.regions region (ref n)

let data_ref (t : t) ?(write = false) addr =
  Gv.Int.push t.addrs addr;
  Gv.Bool.push t.writes write

let branch (t : t) ~pc ~taken =
  Gv.Int.push t.branch_pcs pc;
  Gv.Bool.push t.branch_taken taken

let io_wait (t : t) = t.io <- t.io + 1

let account_refs (t : t) n =
  if n < 0 then invalid_arg "Sink.account_refs: negative count";
  t.extra_refs <- t.extra_refs + n

let account_branches (t : t) n =
  if n < 0 then invalid_arg "Sink.account_branches: negative count";
  t.extra_branches <- t.extra_branches + n
let total_instrs (t : t) = t.instr_total
let n_refs (t : t) = Gv.Int.length t.addrs
let io_waits (t : t) = t.io

let drain (t : t) =
  let d =
    {
      instrs = t.instr_total;
      region_instrs =
        (* Region order feeds RNG draws and feature interning downstream:
           sorted by region id, not bucket order. *)
        Stats.Det.hashtbl_bindings t.regions
        |> List.map (fun (r, c) -> (r, !c))
        |> Array.of_list;
      addrs = Gv.Int.to_array t.addrs;
      writes = Gv.Bool.to_array t.writes;
      branch_pcs = Gv.Int.to_array t.branch_pcs;
      branch_taken = Gv.Bool.to_array t.branch_taken;
      io_waits = t.io;
      extra_refs = t.extra_refs;
      extra_branches = t.extra_branches;
    }
  in
  t.instr_total <- 0;
  Hashtbl.reset t.regions;
  Gv.Int.clear t.addrs;
  Gv.Bool.clear t.writes;
  Gv.Int.clear t.branch_pcs;
  Gv.Bool.clear t.branch_taken;
  t.io <- 0;
  t.extra_refs <- 0;
  t.extra_branches <- 0;
  d
