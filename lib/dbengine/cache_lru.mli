(** Exact-capacity fully-associative LRU key cache (hash table + intrusive
    doubly-linked list), used for the database buffer cache where the
    hardware cache model's power-of-two set-associative geometry would be
    wrong. *)

type t

val create : capacity:int -> t
val access : t -> int -> bool
(** [true] on hit; inserts and possibly evicts on miss. *)

val mem : t -> int -> bool
val size : t -> int
val hits : t -> int
val misses : t -> int
val accesses : t -> int
