(* Intrusive doubly-linked LRU list over array slots; the hash table maps
   keys to slots. *)
type t = {
  capacity : int;
  table : (int, int) Hashtbl.t;  (* key -> slot *)
  keys : int array;
  prev : int array;
  next : int array;
  mutable head : int;  (* most recently used; -1 when empty *)
  mutable tail : int;  (* least recently used; -1 when empty *)
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache_lru.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    keys = Array.make capacity 0;
    prev = Array.make capacity (-1);
    next = Array.make capacity (-1);
    head = -1;
    tail = -1;
    size = 0;
    hits = 0;
    misses = 0;
  }

let unlink t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t slot =
  t.prev.(slot) <- -1;
  t.next.(slot) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- slot;
  t.head <- slot;
  if t.tail < 0 then t.tail <- slot

let access t key =
  match Hashtbl.find_opt t.table key with
  | Some slot ->
      t.hits <- t.hits + 1;
      if t.head <> slot then begin
        unlink t slot;
        push_front t slot
      end;
      true
  | None ->
      t.misses <- t.misses + 1;
      let slot =
        if t.size < t.capacity then begin
          let s = t.size in
          t.size <- t.size + 1;
          s
        end
        else begin
          let victim = t.tail in
          Hashtbl.remove t.table t.keys.(victim);
          unlink t victim;
          victim
        end
      in
      t.keys.(slot) <- key;
      Hashtbl.replace t.table key slot;
      push_front t slot;
      false

let mem t key = Hashtbl.mem t.table key
let size t = t.size
let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

