(** Query plan runner: executes a sequence of operators, restarting the
    plan when it completes (the paper measures each ODB-H query during its
    steady-state repetition). *)

type t

type progress = More | Blocked | Query_done

val create : name:string -> ops:Ops.t array -> t
val name : t -> string
val step : t -> Sink.t -> progress
(** Run one chunk of the current operator.  Crossing the end of the plan
    resets every operator and reports [Query_done]. *)

val completed : t -> int
(** Number of complete plan executions so far. *)

