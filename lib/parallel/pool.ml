type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  jobs : int;
}

let max_jobs = 64

let clamp_jobs jobs = max 1 (min jobs max_jobs)

let env_jobs () =
  match Sys.getenv_opt "JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (clamp_jobs n)
      | Some _ | None -> None)

let default_jobs ?(cap = 8) () =
  match env_jobs () with
  | Some n -> n
  | None -> clamp_jobs (min cap (Domain.recommended_domain_count ()))

(* Workers loop popping tasks; on shutdown they first drain whatever is
   still queued so no submitted task is silently dropped.  Tasks never
   raise: [map] wraps user functions so exceptions are captured and
   re-raised on the submitting thread. *)
let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stopping) && Queue.is_empty t.queue do
      Condition.wait t.work_available t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = clamp_jobs jobs in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
      jobs;
    }
  in
  (* The submitting thread participates in [map], so [jobs - 1] domains
     give [jobs]-way parallelism (and jobs = 1 spawns nothing: a plain
     serial map). *)
  if jobs > 1 then t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let map (type b) t (f : 'a -> b) (xs : 'a array) : b array =
  if t.stopping then invalid_arg "Parallel.Pool.map: pool is shut down";
  let n = Array.length xs in
  if n <= 1 || Array.length t.workers = 0 then Array.map f xs
  else begin
    let results : b option array = Array.make n None in
    (* First error by input index, so the raised exception is
       deterministic even when several tasks fail. *)
    let first_error = ref None in
    let remaining = ref n in
    let batch_done = Condition.create () in
    let run_one i =
      let r =
        match f xs.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      (match r with
      | Ok v -> results.(i) <- Some v
      | Error err -> (
          match !first_error with
          | Some (j, _) when j < i -> ()
          | Some _ | None -> first_error := Some (i, err)));
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (fun () -> run_one i) t.queue
    done;
    Condition.broadcast t.work_available;
    (* Help execute queued tasks while waiting.  The helper may pick up
       tasks from other (possibly nested) batches; because it never
       blocks while the queue is non-empty, nested [map] calls from
       inside tasks cannot deadlock the pool. *)
    while !remaining > 0 do
      if Queue.is_empty t.queue then Condition.wait batch_done t.mutex
      else begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex
      end
    done;
    Mutex.unlock t.mutex;
    match !first_error with
    | Some (_, (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

(* A future's state is guarded by the pool mutex; each future carries its
   own condition so [await] wakes only when *its* result lands. *)
type 'a future = {
  mutable result : ('a, exn * Printexc.raw_backtrace) result option;
  completed : Condition.t;
}

let submit (type a) t (f : unit -> a) : a future =
  (* The serve loop drains and exits before it shuts the pool down, so this
     guard cannot fire on the request path; static analysis cannot see that
     ordering, hence the point waiver. *)
  if t.stopping then
    (invalid_arg [@lint.allow "G003"]) "Parallel.Pool.submit: pool is shut down";
  let fut = { result = None; completed = Condition.create () } in
  let run () =
    match f () with
    | v -> Ok v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  if Array.length t.workers = 0 then fut.result <- Some (run ())
  else begin
    Mutex.lock t.mutex;
    Queue.push
      (fun () ->
        let r = run () in
        Mutex.lock t.mutex;
        fut.result <- Some r;
        Condition.broadcast fut.completed;
        Mutex.unlock t.mutex)
      t.queue;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex
  end;
  fut

let await t fut =
  let finish = function
    | Ok v -> v
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  in
  (* Help execute queued tasks while waiting (possibly the future's own
     task), exactly like [map]'s wait loop, so nested use cannot wedge the
     pool. *)
  Mutex.lock t.mutex;
  while fut.result = None do
    if Queue.is_empty t.queue then Condition.wait fut.completed t.mutex
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      Mutex.lock t.mutex
    end
  done;
  let r = match fut.result with Some r -> r | None -> assert false in
  Mutex.unlock t.mutex;
  finish r

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* Process-lifetime pools, one per distinct [jobs] value.  Analyses and
   experiment sweeps grab these instead of spawning fresh domains per
   call, which both bounds the domain count and keeps pool reuse cheap. *)
let shared_mutex = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~jobs =
  let jobs = clamp_jobs jobs in
  Mutex.lock shared_mutex;
  let p =
    match Hashtbl.find_opt shared_pools jobs with
    | Some p -> p
    | None ->
        let p = create ~jobs in
        Hashtbl.add shared_pools jobs p;
        p
  in
  Mutex.unlock shared_mutex;
  p
