(* The serve layer's shard domains.  A thin veneer over Domain so the
   D004 lint keeps a single answer to "who may spawn domains": this
   library. *)

type 'a t = 'a Domain.t

let spawn f = Domain.spawn f
let join d = Domain.join d
