(** A small, dependency-free work pool on OCaml 5 [Domain]s.

    The pool exists so that cross-validation folds and per-workload
    analyses can fan out across cores while keeping results bit-identical
    to a serial run: [map] always returns results in input order, and
    callers are expected to hand each task its own deterministic inputs
    (e.g. an {!Stats.Rng.split_label} stream) so nothing depends on
    scheduling.

    A pool created with [jobs = 1] spawns no domains and [map] is a plain
    [Array.map], which makes serial-vs-parallel equivalence trivially
    testable. *)

type t

val max_jobs : int
(** Upper bound on [jobs] (the constructor clamps, it does not raise). *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is clamped to
    [1 .. max_jobs]); the thread calling {!map} acts as the [jobs]-th
    worker while it waits. *)

val jobs : t -> int
(** The (clamped) parallelism this pool was created with. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element of [xs], possibly in
    parallel, and returns the results in input order.  If one or more
    tasks raise, every task still runs to completion (the pool is never
    wedged) and the exception of the lowest-index failing task is
    re-raised on the calling thread.  Nested calls — [f] itself calling
    [map] on the same pool — are safe: waiting threads execute queued
    tasks instead of blocking.

    @raise Invalid_argument if the pool has been shut down. *)

type 'a future
(** Handle to a single task submitted with {!submit}. *)

val submit : t -> (unit -> 'a) -> 'a future
(** [submit t f] enqueues [f] for execution on the pool and returns
    immediately; the task runs concurrently with the submitter.  On a
    [jobs = 1] pool (no worker domains) [f] runs synchronously before
    [submit] returns, so results are identical for every pool size — the
    only difference is {e when} the work happens.  Used by the streaming
    refit policy to overlap tree retraining with sample ingestion.

    @raise Invalid_argument if the pool has been shut down. *)

val await : t -> 'a future -> 'a
(** Block until the future's task has completed and return its result
    (re-raising the task's exception, if any).  While waiting, the caller
    helps execute queued tasks — possibly the awaited task itself — so
    [await] cannot deadlock with nested {!map} calls.  [await] may be
    called at most once per future from one thread. *)

val shutdown : t -> unit
(** Drain the queue, stop and join all worker domains.  Idempotent;
    concurrent {!map} calls must have completed first. *)

val shared : jobs:int -> t
(** Process-lifetime pool memoised per [jobs] value.  Never shut down;
    use this from library code so repeated analyses do not re-spawn
    domains. *)

val default_jobs : ?cap:int -> unit -> int
(** The [JOBS] environment variable if set and positive, otherwise
    [Domain.recommended_domain_count ()] capped at [cap] (default 8). *)

val env_jobs : unit -> int option
(** Just the [JOBS] environment variable, if set to a positive integer. *)
