(** Domains for IO shards.

    {!Pool} owns the compute domains; this is the (equally sanctioned)
    spawn point for the serve layer's accept/IO shard domains, so that
    [Domain.spawn] stays confined to [lib/parallel] (lint D004).  Unlike
    pool workers, an IO shard runs one long-lived loop and is joined
    exactly once at shutdown. *)

type 'a t

val spawn : (unit -> 'a) -> 'a t

val join : 'a t -> 'a
(** Wait for the shard body to return and yield its result, re-raising
    whatever it raised.  Call exactly once per handle. *)
