(* Message codec: one tag byte per constructor, fixed-width fields via
   Wire.Enc/Dec.  Decoders validate tags and reject trailing bytes so a
   corrupt payload becomes a typed Error, never a partial message. *)

type request =
  | Analyze of string
  | Quadrant of string
  | Re_curve of string
  | Ingest_open of string
  | Ingest_feed of Sampling.Driver.sample list
  | Ingest_finalize
  | Stats
  | Health
  | Shutdown

type error_code =
  | Overloaded
  | Timeout
  | Busy
  | Bad_request
  | Unknown_workload
  | Failed
  | Rate_limited
  | Too_large

type response =
  | Report of string
  | Quadrant_verdict of {
      workload : string;
      quadrant : Fuzzy.Quadrant.t;
      cpi_variance : float;
      re_kopt : float;
      kopt : int;
      technique : string;
    }
  | Curve of { workload : string; curve : Rtree.Cv.curve }
  | Verdicts of string list
  | Ingest_ack of string
  | Ingest_final of string
  | Stats_snapshot of Metrics.snapshot
  | Health_ok of { version : int; jobs : int; workloads : int }
  | Shutdown_ack
  | Error of { code : error_code; message : string }

let request_kind = function
  | Analyze _ -> "analyze"
  | Quadrant _ -> "quadrant"
  | Re_curve _ -> "re_curve"
  | Ingest_open _ -> "ingest_open"
  | Ingest_feed _ -> "ingest_feed"
  | Ingest_finalize -> "ingest_finalize"
  | Stats -> "stats"
  | Health -> "health"
  | Shutdown -> "shutdown"

let error_code_to_string = function
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Busy -> "busy"
  | Bad_request -> "bad_request"
  | Unknown_workload -> "unknown_workload"
  | Failed -> "failed"
  | Rate_limited -> "rate_limited"
  | Too_large -> "too_large"

let error_code_tag = function
  | Overloaded -> 0
  | Timeout -> 1
  | Busy -> 2
  | Bad_request -> 3
  | Unknown_workload -> 4
  | Failed -> 5
  | Rate_limited -> 6
  | Too_large -> 7

let error_code_of_tag = function
  | 0 -> Overloaded
  | 1 -> Timeout
  | 2 -> Busy
  | 3 -> Bad_request
  | 4 -> Unknown_workload
  | 5 -> Failed
  | 6 -> Rate_limited
  | 7 -> Too_large
  | t -> raise (Wire.Decode_error (Printf.sprintf "bad error code tag %d" t))

(* ----------------------------- samples ------------------------------ *)

let enc_sample e (s : Sampling.Driver.sample) =
  Wire.Enc.int e s.Sampling.Driver.eip;
  Wire.Enc.int e s.Sampling.Driver.tid;
  Wire.Enc.int e s.Sampling.Driver.instrs;
  Wire.Enc.float e s.Sampling.Driver.cycles;
  Wire.Enc.float e s.Sampling.Driver.breakdown.March.Breakdown.work;
  Wire.Enc.float e s.Sampling.Driver.breakdown.March.Breakdown.fe;
  Wire.Enc.float e s.Sampling.Driver.breakdown.March.Breakdown.exe;
  Wire.Enc.float e s.Sampling.Driver.breakdown.March.Breakdown.other;
  Wire.Enc.int e s.Sampling.Driver.os_instrs;
  Wire.Enc.list e
    (fun e (r, n) ->
      Wire.Enc.int e r;
      Wire.Enc.int e n)
    (Array.to_list s.Sampling.Driver.region_instrs)

let dec_sample d =
  let eip = Wire.Dec.int d in
  let tid = Wire.Dec.int d in
  let instrs = Wire.Dec.int d in
  let cycles = Wire.Dec.float d in
  let work = Wire.Dec.float d in
  let fe = Wire.Dec.float d in
  let exe = Wire.Dec.float d in
  let other = Wire.Dec.float d in
  let os_instrs = Wire.Dec.int d in
  let region_instrs =
    Array.of_list
      (Wire.Dec.list d (fun d ->
           let r = Wire.Dec.int d in
           let n = Wire.Dec.int d in
           (r, n)))
  in
  {
    Sampling.Driver.eip;
    tid;
    instrs;
    cycles;
    breakdown = { March.Breakdown.work; fe; exe; other };
    os_instrs;
    region_instrs;
  }

(* ----------------------------- requests ----------------------------- *)

let encode_request req =
  let e = Wire.Enc.create () in
  (match req with
  | Analyze w ->
      Wire.Enc.u8 e 0;
      Wire.Enc.string e w
  | Quadrant w ->
      Wire.Enc.u8 e 1;
      Wire.Enc.string e w
  | Re_curve w ->
      Wire.Enc.u8 e 2;
      Wire.Enc.string e w
  | Ingest_open stream ->
      Wire.Enc.u8 e 3;
      Wire.Enc.string e stream
  | Ingest_feed samples ->
      Wire.Enc.u8 e 4;
      Wire.Enc.list e enc_sample samples
  | Ingest_finalize -> Wire.Enc.u8 e 5
  | Stats -> Wire.Enc.u8 e 6
  | Health -> Wire.Enc.u8 e 7
  | Shutdown -> Wire.Enc.u8 e 8);
  Wire.Enc.contents e

let decode_request payload =
  match
    let d = Wire.Dec.of_string payload in
    let req =
      match Wire.Dec.u8 d with
      | 0 -> Analyze (Wire.Dec.string d)
      | 1 -> Quadrant (Wire.Dec.string d)
      | 2 -> Re_curve (Wire.Dec.string d)
      | 3 -> Ingest_open (Wire.Dec.string d)
      | 4 -> Ingest_feed (Wire.Dec.list d dec_sample)
      | 5 -> Ingest_finalize
      | 6 -> Stats
      | 7 -> Health
      | 8 -> Shutdown
      | t -> raise (Wire.Decode_error (Printf.sprintf "bad request tag %d" t))
    in
    Wire.Dec.expect_end d;
    req
  with
  | req -> Ok req
  | exception Wire.Decode_error msg -> Stdlib.Error msg
  | exception Invalid_argument msg -> Stdlib.Error msg

(* ----------------------------- responses ---------------------------- *)

let enc_snapshot e (s : Metrics.snapshot) =
  let pair e (k, v) =
    Wire.Enc.string e k;
    Wire.Enc.int e v
  in
  Wire.Enc.int e s.Metrics.connections_accepted;
  Wire.Enc.int e s.Metrics.connections_active;
  Wire.Enc.int e s.Metrics.connections_refused;
  Wire.Enc.int e s.Metrics.requests_total;
  Wire.Enc.list e pair s.Metrics.requests_by_kind;
  Wire.Enc.int e s.Metrics.responses_ok;
  Wire.Enc.list e pair s.Metrics.responses_error;
  Wire.Enc.int e s.Metrics.batch_joined;
  Wire.Enc.int e s.Metrics.cache_hits;
  Wire.Enc.int e s.Metrics.cache_misses;
  Wire.Enc.int e s.Metrics.store_hits;
  Wire.Enc.int e s.Metrics.store_misses;
  Wire.Enc.int e s.Metrics.store_writes;
  Wire.Enc.int e s.Metrics.store_corrupt;
  Wire.Enc.int e s.Metrics.queue_high_water;
  Wire.Enc.int e s.Metrics.inflight_high_water;
  Wire.Enc.int e s.Metrics.io_shards;
  Wire.Enc.list e pair s.Metrics.accepted_by_shard;
  Wire.Enc.int e s.Metrics.admission_admitted;
  Wire.Enc.int e s.Metrics.admission_rate_limited;
  Wire.Enc.int e s.Metrics.admission_too_large;
  Wire.Enc.int e s.Metrics.admission_breaker_rejected;
  Wire.Enc.int e s.Metrics.admission_breaker_trips

let dec_snapshot d =
  let pair d =
    let k = Wire.Dec.string d in
    let v = Wire.Dec.int d in
    (k, v)
  in
  let connections_accepted = Wire.Dec.int d in
  let connections_active = Wire.Dec.int d in
  let connections_refused = Wire.Dec.int d in
  let requests_total = Wire.Dec.int d in
  let requests_by_kind = Wire.Dec.list d pair in
  let responses_ok = Wire.Dec.int d in
  let responses_error = Wire.Dec.list d pair in
  let batch_joined = Wire.Dec.int d in
  let cache_hits = Wire.Dec.int d in
  let cache_misses = Wire.Dec.int d in
  let store_hits = Wire.Dec.int d in
  let store_misses = Wire.Dec.int d in
  let store_writes = Wire.Dec.int d in
  let store_corrupt = Wire.Dec.int d in
  let queue_high_water = Wire.Dec.int d in
  let inflight_high_water = Wire.Dec.int d in
  let io_shards = Wire.Dec.int d in
  let accepted_by_shard = Wire.Dec.list d pair in
  let admission_admitted = Wire.Dec.int d in
  let admission_rate_limited = Wire.Dec.int d in
  let admission_too_large = Wire.Dec.int d in
  let admission_breaker_rejected = Wire.Dec.int d in
  let admission_breaker_trips = Wire.Dec.int d in
  {
    Metrics.connections_accepted;
    connections_active;
    connections_refused;
    requests_total;
    requests_by_kind;
    responses_ok;
    responses_error;
    batch_joined;
    cache_hits;
    cache_misses;
    store_hits;
    store_misses;
    store_writes;
    store_corrupt;
    queue_high_water;
    inflight_high_water;
    io_shards;
    accepted_by_shard;
    admission_admitted;
    admission_rate_limited;
    admission_too_large;
    admission_breaker_rejected;
    admission_breaker_trips;
  }

let enc_curve e (c : Rtree.Cv.curve) =
  Wire.Enc.list e Wire.Enc.int (Array.to_list c.Rtree.Cv.k_values);
  Wire.Enc.list e Wire.Enc.float (Array.to_list c.Rtree.Cv.e);
  Wire.Enc.list e Wire.Enc.float (Array.to_list c.Rtree.Cv.re);
  Wire.Enc.float e c.Rtree.Cv.variance

let dec_curve d =
  let k_values = Array.of_list (Wire.Dec.list d Wire.Dec.int) in
  let e = Array.of_list (Wire.Dec.list d Wire.Dec.float) in
  let re = Array.of_list (Wire.Dec.list d Wire.Dec.float) in
  let variance = Wire.Dec.float d in
  { Rtree.Cv.k_values; e; re; variance }

let encode_response resp =
  let e = Wire.Enc.create () in
  (match resp with
  | Report text ->
      Wire.Enc.u8 e 0;
      Wire.Enc.string e text
  | Quadrant_verdict { workload; quadrant; cpi_variance; re_kopt; kopt; technique } ->
      Wire.Enc.u8 e 1;
      Wire.Enc.string e workload;
      Wire.Enc.u8 e (Fuzzy.Quadrant.to_int quadrant);
      Wire.Enc.float e cpi_variance;
      Wire.Enc.float e re_kopt;
      Wire.Enc.int e kopt;
      Wire.Enc.string e technique
  | Curve { workload; curve } ->
      Wire.Enc.u8 e 2;
      Wire.Enc.string e workload;
      enc_curve e curve
  | Verdicts lines ->
      Wire.Enc.u8 e 3;
      Wire.Enc.list e Wire.Enc.string lines
  | Ingest_ack stream ->
      Wire.Enc.u8 e 4;
      Wire.Enc.string e stream
  | Ingest_final text ->
      Wire.Enc.u8 e 5;
      Wire.Enc.string e text
  | Stats_snapshot snap ->
      Wire.Enc.u8 e 6;
      enc_snapshot e snap
  | Health_ok { version; jobs; workloads } ->
      Wire.Enc.u8 e 7;
      Wire.Enc.int e version;
      Wire.Enc.int e jobs;
      Wire.Enc.int e workloads
  | Shutdown_ack -> Wire.Enc.u8 e 8
  | Error { code; message } ->
      Wire.Enc.u8 e 9;
      Wire.Enc.u8 e (error_code_tag code);
      Wire.Enc.string e message);
  Wire.Enc.contents e

let decode_response payload =
  match
    let d = Wire.Dec.of_string payload in
    let resp =
      match Wire.Dec.u8 d with
      | 0 -> Report (Wire.Dec.string d)
      | 1 ->
          let workload = Wire.Dec.string d in
          let quadrant = Fuzzy.Quadrant.of_int (Wire.Dec.u8 d) in
          let cpi_variance = Wire.Dec.float d in
          let re_kopt = Wire.Dec.float d in
          let kopt = Wire.Dec.int d in
          let technique = Wire.Dec.string d in
          Quadrant_verdict { workload; quadrant; cpi_variance; re_kopt; kopt; technique }
      | 2 ->
          let workload = Wire.Dec.string d in
          let curve = dec_curve d in
          Curve { workload; curve }
      | 3 -> Verdicts (Wire.Dec.list d Wire.Dec.string)
      | 4 -> Ingest_ack (Wire.Dec.string d)
      | 5 -> Ingest_final (Wire.Dec.string d)
      | 6 -> Stats_snapshot (dec_snapshot d)
      | 7 ->
          let version = Wire.Dec.int d in
          let jobs = Wire.Dec.int d in
          let workloads = Wire.Dec.int d in
          Health_ok { version; jobs; workloads }
      | 8 -> Shutdown_ack
      | 9 ->
          let code = error_code_of_tag (Wire.Dec.u8 d) in
          let message = Wire.Dec.string d in
          Error { code; message }
      | t -> raise (Wire.Decode_error (Printf.sprintf "bad response tag %d" t))
    in
    Wire.Dec.expect_end d;
    resp
  with
  | resp -> Ok resp
  | exception Wire.Decode_error msg -> Stdlib.Error msg
  | exception Invalid_argument msg -> Stdlib.Error msg

let is_error = function Error _ -> true | _ -> false

let render_response = function
  | Report text -> text
  | Quadrant_verdict { workload; quadrant; cpi_variance; re_kopt; kopt; technique } ->
      Printf.sprintf
        "%s: %s -- %s\n  cpi_variance %.6f, RE_kopt %.3f at k_opt=%d\n  recommended sampling technique: %s\n"
        workload
        (Fuzzy.Quadrant.to_string quadrant)
        (Fuzzy.Quadrant.description quadrant)
        cpi_variance re_kopt kopt technique
  | Curve { workload; curve } ->
      Printf.sprintf "RE curve for %s:\n%s" workload (Fuzzy.Report.re_curve curve)
  | Verdicts lines -> String.concat "" (List.map (fun l -> l ^ "\n") lines)
  | Ingest_ack stream -> Printf.sprintf "ingest stream %S open\n" stream
  | Ingest_final text -> text
  | Stats_snapshot snap -> Metrics.render snap
  | Health_ok { version; jobs; workloads } ->
      Printf.sprintf "ok: protocol v%d, jobs=%d, %d catalog workloads\n" version jobs
        workloads
  | Shutdown_ack -> "server is shutting down\n"
  | Error { code; message } ->
      Printf.sprintf "error (%s): %s\n" (error_code_to_string code) message
