(** Request/response vocabulary of the analysis server and its
    deterministic binary codec.

    A request names a workload (or carries samples for a per-session
    ingest stream); a response carries either the rendered analysis —
    byte-identical to what the offline CLI prints for the same
    configuration — or a typed error.  Encoding is built on {!Wire.Enc}
    / {!Wire.Dec}, so [encode_* ] is a pure function of the message and
    round-trips exactly (property-tested in [test/test_serve.ml]). *)

type request =
  | Analyze of string  (** full predictability report for a workload *)
  | Quadrant of string  (** just the quadrant verdict + technique *)
  | Re_curve of string  (** the cross-validated RE_k curve *)
  | Ingest_open of string
      (** open this connection's streaming pipeline; the argument names
          the stream (it labels the reservoir RNG, so equal names and
          configs give byte-identical verdicts) *)
  | Ingest_feed of Sampling.Driver.sample list
      (** feed samples; answered with the verdict lines of every
          interval the batch sealed *)
  | Ingest_finalize  (** final fit + verdict; closes the stream *)
  | Stats  (** the server's metrics snapshot *)
  | Health
  | Shutdown  (** ack, then drain and exit *)

type error_code =
  | Overloaded  (** bounded request queue is full *)
  | Timeout  (** deadline exceeded before the request was served *)
  | Busy  (** connection refused at the max-connections cap *)
  | Bad_request  (** frame or payload did not parse *)
  | Unknown_workload
  | Failed  (** the work itself raised *)
  | Rate_limited  (** admission: the peer's token bucket is empty *)
  | Too_large  (** admission: request over the size budget *)

type response =
  | Report of string
      (** [Analyze] payload: exactly the offline [repro analyze] text *)
  | Quadrant_verdict of {
      workload : string;
      quadrant : Fuzzy.Quadrant.t;
      cpi_variance : float;
      re_kopt : float;
      kopt : int;
      technique : string;
    }
  | Curve of { workload : string; curve : Rtree.Cv.curve }
  | Verdicts of string list  (** rendered {!Online.Classifier} lines *)
  | Ingest_ack of string  (** stream name *)
  | Ingest_final of string  (** rendered {!Online.Pipeline.pp_final} *)
  | Stats_snapshot of Metrics.snapshot
  | Health_ok of { version : int; jobs : int; workloads : int }
  | Shutdown_ack
  | Error of { code : error_code; message : string }

val request_kind : request -> string
(** Short stable label ("analyze", "ingest_feed", ...) used as the
    metrics key. *)

val error_code_to_string : error_code -> string

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val render_response : response -> string
(** What [repro client] prints for a response.  For [Report],
    [Verdicts], [Ingest_final] and [Stats_snapshot] this is exactly the
    text the corresponding offline command would print. *)

val is_error : response -> bool
