(* The one blessed wall-clock read of the serving layer (see clock.mli and
   the D002 rule in Lint.Rules_det).  Deadline timers are pure control
   flow: they decide *whether* a request is answered with a Timeout error,
   never *what* an analytic payload contains, so determinism of response
   bytes is preserved. *)

let now () = Unix.gettimeofday ()

let expired ~deadline =
  match deadline with None -> false | Some d -> now () >= d
