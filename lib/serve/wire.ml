(* Frame layout (all integers big-endian):
     bytes 0-3    magic "FZRP"
     bytes 4-5    version (u16)
     bytes 6-9    payload length (u32)
     bytes 10-13  Adler-32 of the payload (u32)
     bytes 14..   payload
   Fixed-width integers and IEEE bit patterns keep encoding a pure
   function of the value, so identical messages are identical bytes. *)

let magic = "FZRP"

(* v2: Stats_snapshot grew the four store.* counters.
   v3: Stats_snapshot grew the shard and admission counters, and error
   codes 6 (rate_limited) / 7 (too_large) joined the vocabulary.  The
   version lives in every frame header, so an old peer rejects newer
   frames outright instead of misparsing the longer snapshot. *)
let version = 3
let header_len = 14
let default_max_payload = 16 * 1024 * 1024

type error =
  | Bad_magic
  | Bad_version of int
  | Oversized of int
  | Bad_checksum
  | Truncated

let error_to_string = function
  | Bad_magic -> "bad magic (not a FZRP frame)"
  | Bad_version v -> Printf.sprintf "protocol version %d (expected %d)" v version
  | Oversized n -> Printf.sprintf "declared payload of %d bytes exceeds the cap" n
  | Bad_checksum -> "payload checksum mismatch"
  | Truncated -> "truncated frame"

(* Adler-32 (RFC 1950): two running sums mod 65521. *)
let adler32 s =
  let base = 65521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod base;
      b := (!b + !a) mod base)
    s;
  (!b lsl 16) lor !a

let put_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode payload =
  let buf = Buffer.create (header_len + String.length payload) in
  Buffer.add_string buf magic;
  put_u16 buf version;
  put_u32 buf (String.length payload);
  put_u32 buf (adler32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode_header ?(max_payload = default_max_payload) bytes =
  if String.length bytes < header_len then Error Truncated
  else if String.sub bytes 0 4 <> magic then Error Bad_magic
  else
    let v = get_u16 bytes 4 in
    if v <> version then Error (Bad_version v)
    else
      let len = get_u32 bytes 6 in
      if len > max_payload then Error (Oversized len)
      else Ok (len, get_u32 bytes 10)

let check_payload payload ~checksum = adler32 payload = checksum

let decode ?max_payload frame =
  match decode_header ?max_payload frame with
  | Error _ as e -> e
  | Ok (len, checksum) ->
      if String.length frame <> header_len + len then Error Truncated
      else
        let payload = String.sub frame header_len len in
        if check_payload payload ~checksum then Ok payload else Error Bad_checksum

(* ------------------------- blocking transport ----------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let write_frame fd payload = write_all fd (encode payload)

(* Read exactly [n] bytes; [None] on EOF before the first byte, Truncated
   via the caller if EOF strikes mid-read. *)
let read_exactly fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    let r = Unix.read fd b !off (n - !off) in
    if r = 0 then eof := true else off := !off + r
  done;
  if !eof then None else Some (Bytes.to_string b)

let read_frame ?max_payload fd =
  match read_exactly fd header_len with
  | None -> Error Truncated
  | Some header -> (
      match decode_header ?max_payload header with
      | Error _ as e -> e
      | Ok (len, checksum) -> (
          let payload = if len = 0 then Some "" else read_exactly fd len in
          match payload with
          | None -> Error Truncated
          | Some payload ->
              if check_payload payload ~checksum then Ok payload else Error Bad_checksum))

(* --------------------------- primitive codec ------------------------ *)

exception Decode_error of string

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let int t v =
    let v64 = Int64.of_int v in
    for i = 7 downto 0 do
      Buffer.add_char t
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v64 (8 * i)) 0xFFL)))
    done

  (* Written from the Int64 bit pattern directly: OCaml ints are 63-bit,
     so going through [int] would lose the sign bit of the double. *)
  let float t v =
    let bits = Int64.bits_of_float v in
    for i = 7 downto 0 do
      Buffer.add_char t
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
    done

  let string t s =
    int t (String.length s);
    Buffer.add_string t s

  let bool t b = u8 t (if b then 1 else 0)

  let list t f xs =
    int t (List.length xs);
    List.iter (f t) xs

  let contents = Buffer.contents
end

module Dec = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }

  (* Bounds checks compare against the *remaining* byte count rather
     than computing [t.pos + n]: a hostile 8-byte length near max_int
     would make that sum wrap negative and slip past the guard. *)
  let remaining t = String.length t.src - t.pos

  let take t n =
    if n < 0 || n > remaining t then
      raise (Decode_error (Printf.sprintf "short read at byte %d" t.pos));
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let u8 t = Char.code (take t 1).[0]

  let int64 t =
    let s = take t 8 in
    let v = ref 0L in
    String.iter (fun c -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c))) s;
    !v

  let int t = Int64.to_int (int64 t)
  let float t = Int64.float_of_bits (int64 t)

  let string t =
    let n = int t in
    if n < 0 || n > remaining t then
      raise (Decode_error (Printf.sprintf "bad string length %d at byte %d" n t.pos));
    take t n

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | v -> raise (Decode_error (Printf.sprintf "bad bool byte %d" v))

  let list t f =
    let n = int t in
    (* Every element decoder consumes at least one byte, so a count
       beyond the remaining bytes is corrupt — reject it before
       [List.init] commits to materialising it. *)
    if n < 0 || n > remaining t then
      raise (Decode_error (Printf.sprintf "bad list length %d" n));
    List.init n (fun _ -> f t)

  let expect_end t =
    if t.pos <> String.length t.src then
      raise
        (Decode_error
           (Printf.sprintf "%d trailing byte(s) after message" (String.length t.src - t.pos)))
end
