(* Counters, plus per-verb latency histograms for the HTTP /metrics
   exposition.  The counters are a deterministic function of the request
   history and travel over the binary stats RPC; the histograms are the
   one deliberately clock-fed surface (observed via Serve.Clock at the
   response sites) and are exposed ONLY through [latency] — they never
   enter [snapshot], so the stats RPC stays byte-identical run to run. *)

(* Fixed log-spaced bucket upper bounds, in seconds: 1 us doubling up to
   ~8.4 s (24 bounds + overflow).  Fixed at build time so dashboards and
   the golden exposition transcript never see a bucket layout change
   without a code change. *)
let bucket_bounds = Array.init 24 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

type hist = {
  buckets : int array;  (* per-bucket counts; last entry = overflow *)
  mutable sum : float;
  mutable count : int;
}

type hist_snapshot = {
  hist_kind : string;
  hist_buckets : int array;
  hist_sum : float;
  hist_count : int;
}

type t = {
  mutable connections_accepted : int;
  mutable connections_active : int;
  mutable connections_refused : int;
  mutable requests_total : int;
  by_kind : (string, int) Hashtbl.t;
  mutable responses_ok : int;
  by_error : (string, int) Hashtbl.t;
  mutable batch_joined : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable store_hits : int;
  mutable store_misses : int;
  mutable store_writes : int;
  mutable store_corrupt : int;
  mutable queue_high_water : int;
  mutable inflight_high_water : int;
  mutable io_shards : int;
  by_shard : (string, int) Hashtbl.t;  (* "00".."NN" -> accepted *)
  mutable admission_admitted : int;
  mutable admission_rate_limited : int;
  mutable admission_too_large : int;
  mutable admission_breaker_rejected : int;
  mutable admission_breaker_trips : int;
  lat : (string, hist) Hashtbl.t;  (* verb -> latency histogram *)
}

type snapshot = {
  connections_accepted : int;
  connections_active : int;
  connections_refused : int;
  requests_total : int;
  requests_by_kind : (string * int) list;
  responses_ok : int;
  responses_error : (string * int) list;
  batch_joined : int;
  cache_hits : int;
  cache_misses : int;
  store_hits : int;
  store_misses : int;
  store_writes : int;
  store_corrupt : int;
  queue_high_water : int;
  inflight_high_water : int;
  io_shards : int;
  accepted_by_shard : (string * int) list;
  admission_admitted : int;
  admission_rate_limited : int;
  admission_too_large : int;
  admission_breaker_rejected : int;
  admission_breaker_trips : int;
}

let create () =
  {
    connections_accepted = 0;
    connections_active = 0;
    connections_refused = 0;
    requests_total = 0;
    by_kind = Hashtbl.create 8;
    responses_ok = 0;
    by_error = Hashtbl.create 8;
    batch_joined = 0;
    cache_hits = 0;
    cache_misses = 0;
    store_hits = 0;
    store_misses = 0;
    store_writes = 0;
    store_corrupt = 0;
    queue_high_water = 0;
    inflight_high_water = 0;
    io_shards = 1;
    by_shard = Hashtbl.create 8;
    admission_admitted = 0;
    admission_rate_limited = 0;
    admission_too_large = 0;
    admission_breaker_rejected = 0;
    admission_breaker_trips = 0;
    lat = Hashtbl.create 8;
  }

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let incr_accepted (t : t) = t.connections_accepted <- t.connections_accepted + 1
let incr_refused (t : t) = t.connections_refused <- t.connections_refused + 1
let set_active (t : t) n = t.connections_active <- n

let incr_request (t : t) ~kind =
  t.requests_total <- t.requests_total + 1;
  bump t.by_kind kind

let incr_ok (t : t) = t.responses_ok <- t.responses_ok + 1
let incr_error (t : t) ~code = bump t.by_error code
let incr_batch_joined (t : t) = t.batch_joined <- t.batch_joined + 1
let incr_cache_hit (t : t) = t.cache_hits <- t.cache_hits + 1
let incr_cache_miss (t : t) = t.cache_misses <- t.cache_misses + 1

(* The persistent store keeps its own monotonic counters; the server
   copies them in before every snapshot rather than mirroring each event. *)
let set_store (t : t) ~hits ~misses ~writes ~corrupt =
  t.store_hits <- hits;
  t.store_misses <- misses;
  t.store_writes <- writes;
  t.store_corrupt <- corrupt

let set_io_shards (t : t) n = t.io_shards <- n

(* Two-digit keys so the sorted snapshot traversal is numeric order up
   to the practical shard ceiling. *)
let incr_shard_accept (t : t) ~shard = bump t.by_shard (Printf.sprintf "%02d" shard)

(* As with the store: lib/admission owns the running totals and the
   server copies them in before every snapshot. *)
let set_admission (t : t) ~admitted ~rate_limited ~too_large ~breaker_rejected
    ~breaker_trips =
  t.admission_admitted <- admitted;
  t.admission_rate_limited <- rate_limited;
  t.admission_too_large <- too_large;
  t.admission_breaker_rejected <- breaker_rejected;
  t.admission_breaker_trips <- breaker_trips

let observe_latency (t : t) ~kind ~seconds =
  let h =
    match Hashtbl.find_opt t.lat kind with
    | Some h -> h
    | None ->
        let h =
          { buckets = Array.make (Array.length bucket_bounds + 1) 0; sum = 0.0; count = 0 }
        in
        Hashtbl.replace t.lat kind h;
        h
  in
  (* A clock step backwards must not poison the histogram. *)
  let seconds = Float.max 0.0 seconds in
  let nbounds = Array.length bucket_bounds in
  let rec bucket i =
    if i >= nbounds then nbounds
    else if seconds <= bucket_bounds.(i) then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.sum <- h.sum +. seconds;
  h.count <- h.count + 1

let latency (t : t) =
  List.map
    (fun (kind, h) ->
      {
        hist_kind = kind;
        hist_buckets = Array.copy h.buckets;
        hist_sum = h.sum;
        hist_count = h.count;
      })
    (Stats.Det.hashtbl_bindings t.lat)

let observe_queue_depth (t : t) n =
  if n > t.queue_high_water then t.queue_high_water <- n

let observe_inflight (t : t) n =
  if n > t.inflight_high_water then t.inflight_high_water <- n

let snapshot (t : t) =
  {
    connections_accepted = t.connections_accepted;
    connections_active = t.connections_active;
    connections_refused = t.connections_refused;
    requests_total = t.requests_total;
    (* Key-sorted traversal (D003): the snapshot must not depend on
       hash-bucket order. *)
    requests_by_kind = Stats.Det.hashtbl_bindings t.by_kind;
    responses_ok = t.responses_ok;
    responses_error = Stats.Det.hashtbl_bindings t.by_error;
    batch_joined = t.batch_joined;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    store_hits = t.store_hits;
    store_misses = t.store_misses;
    store_writes = t.store_writes;
    store_corrupt = t.store_corrupt;
    queue_high_water = t.queue_high_water;
    inflight_high_water = t.inflight_high_water;
    io_shards = t.io_shards;
    accepted_by_shard = Stats.Det.hashtbl_bindings t.by_shard;
    admission_admitted = t.admission_admitted;
    admission_rate_limited = t.admission_rate_limited;
    admission_too_large = t.admission_too_large;
    admission_breaker_rejected = t.admission_breaker_rejected;
    admission_breaker_trips = t.admission_breaker_trips;
  }

let render (s : snapshot) =
  let b = Buffer.create 512 in
  let line k v = Printf.bprintf b "  %-28s %d\n" k v in
  Buffer.add_string b "serve metrics\n";
  line "connections.accepted" s.connections_accepted;
  line "connections.active" s.connections_active;
  line "connections.refused" s.connections_refused;
  line "requests.total" s.requests_total;
  List.iter (fun (k, v) -> line ("requests." ^ k) v) s.requests_by_kind;
  line "responses.ok" s.responses_ok;
  List.iter (fun (k, v) -> line ("responses.error." ^ k) v) s.responses_error;
  line "batch.joined" s.batch_joined;
  line "cache.hits" s.cache_hits;
  line "cache.misses" s.cache_misses;
  line "store.hits" s.store_hits;
  line "store.misses" s.store_misses;
  line "store.writes" s.store_writes;
  line "store.corrupt" s.store_corrupt;
  line "queue.high_water" s.queue_high_water;
  line "inflight.high_water" s.inflight_high_water;
  line "io.shards" s.io_shards;
  List.iter (fun (k, v) -> line ("connections.shard." ^ k) v) s.accepted_by_shard;
  line "admission.admitted" s.admission_admitted;
  line "admission.rate_limited" s.admission_rate_limited;
  line "admission.too_large" s.admission_too_large;
  line "admission.breaker_rejected" s.admission_breaker_rejected;
  line "admission.breaker_trips" s.admission_breaker_trips;
  Buffer.contents b
