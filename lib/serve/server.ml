type address = Unix_socket of string | Tcp of int

type config = {
  analysis : Fuzzy.Analysis.config;
  pipeline : Online.Pipeline.config;
  queue_capacity : int;
  max_connections : int;
  request_timeout : float option;
  max_payload : int;
  io_shards : int;
  backlog : int;
  evloop : Evloop.backend option;
      (* None = best available (epoll on Linux, else select) *)
  admission : Admission.config;
  store_counters : unit -> (int * int * int * int) option;
      (* (hits, misses, writes, corrupt) of the attached persistent
         store, or None when serving without one.  A callback so serve
         stays independent of lib/store; polled before each snapshot. *)
  metrics_port : int option;
      (* loopback TCP port for the HTTP /metrics + /health endpoint
         (0 = OS-assigned, reported via on_event); None = no endpoint *)
}

let default_backlog = 128

let config_of_analysis analysis =
  {
    analysis;
    pipeline = { Online.Pipeline.default with analysis };
    queue_capacity = 64;
    max_connections = 32;
    request_timeout = None;
    max_payload = Wire.default_max_payload;
    io_shards = 1;
    backlog = default_backlog;
    evloop = None;
    admission = Admission.off;
    store_counters = (fun () -> None);
    metrics_port = None;
  }

let describe_address = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp port -> Printf.sprintf "tcp:127.0.0.1:%d" port

(* One queued-or-batched heavy request.  [key] is the encoded request —
   two requests with equal bytes are the same work, so later arrivals
   join [subscribers] instead of queueing a second copy. *)
type pending = {
  key : string;
  kind : string;  (* request verb, for the latency histogram *)
  work : unit -> Protocol.response;
  mutable subscribers : (int * int * float) list;
      (* (connection id, seq, arrival time) — the arrival stamp feeds the
         latency histogram when the shared response is routed out *)
  deadline : float option;
  mutable cancelled : bool;
}

(* One scrape connection on the HTTP metrics endpoint (shard 0 only).
   HTTP/1.0: read one request head, write one response, close. *)
type http_conn = {
  hid : int;
  hfd : Unix.file_descr;
  hbuf : Buffer.t;
  mutable hout : string;  (* full response once the head has parsed *)
  mutable hout_off : int;
  mutable hdone : bool;  (* response built; close after the last write *)
}

(* One accept/IO domain.  A shard owns its sessions and its evloop
   outright; everything cross-shard arrives through [inbox]. *)
type shard = {
  idx : int;
  ev : Evloop.t;
  sessions : (int, Session.t) Hashtbl.t;
  inbox : message Queue.t;
  inbox_mutex : Mutex.t;
}

and message =
  | Accepted of { id : int; fd : Unix.file_descr; peer : string }
  | Deliver of { conn : int; seq : int; frame : string; code : string option }
      (* a routed heavy-request response; [code] is the error code for
         the metrics count (None = ok), applied only if the subscriber
         is still connected *)

let write_all fd s =
  let len = String.length s in
  let rec go off remaining =
    if remaining > 0 then
      match Unix.write_substring fd s off remaining with
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
  in
  go 0 len

let close_quietly fd =
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let listen_socket address ~backlog =
  let fd =
    match address with
    | Unix_socket path ->
        (match Unix.lstat path with
        | { Unix.st_kind = Unix.S_SOCK; _ } ->
            (* A previous server died without cleaning up; the bind below
               would fail on the stale node. *)
            Unix.unlink path
        | _ -> ()
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd backlog;
        fd
    | Tcp port ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd backlog;
        fd
  in
  (* Non-blocking so the accept shard can drain the whole backlog per
     readiness event and stop cleanly on EAGAIN. *)
  Unix.set_nonblock fd;
  fd

let run ?(on_event = fun _ -> ()) cfg address =
  let metrics = Metrics.create () in
  let nshards = max 1 cfg.io_shards in
  Metrics.set_io_shards metrics nshards;
  let backend =
    match cfg.evloop with Some b -> b | None -> Evloop.best ()
  in
  let admission = Admission.create cfg.admission in
  let sync_store_counters () =
    match cfg.store_counters () with
    | Some (hits, misses, writes, corrupt) ->
        Metrics.set_store metrics ~hits ~misses ~writes ~corrupt
    | None -> ()
  in
  let sync_admission_counters () =
    let c = Admission.counters admission in
    Metrics.set_admission metrics ~admitted:c.Admission.admitted
      ~rate_limited:c.Admission.rate_limited ~too_large:c.Admission.too_large
      ~breaker_rejected:c.Admission.breaker_rejected
      ~breaker_trips:c.Admission.breaker_trips
  in
  let pool = Fuzzy.Analysis.pool cfg.analysis in
  let max_inflight = Parallel.Pool.jobs pool in

  (* ---- state shared across shards, guarded by [core] -------------- *)
  (* Lock order: core may be held while posting to an inbox or waking an
     evloop, never the other way around.  Pool.submit is never called
     with core held: at jobs=1 the task runs inline in submit, and the
     task body itself needs core. *)
  let core = Mutex.create () in
  let locked f =
    Mutex.lock core;
    match f () with
    | v ->
        Mutex.unlock core;
        v
    | exception e ->
        Mutex.unlock core;
        raise e
  in
  let by_key : (string, pending) Hashtbl.t = Hashtbl.create 16 in
  let waiting : pending Queue.t = Queue.create () in
  let waiting_count = ref 0 in
  let inflight = ref 0 in
  let active = ref 0 in
  (* peer -> live connections with that identity; the admission state for
     a peer is forgotten when its last connection closes. *)
  let peer_refs : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let draining = Atomic.make false in
  (* Pool workers finish here; any shard may drain and route. *)
  let completions : (string * Protocol.response) Queue.t = Queue.create () in
  let completions_mutex = Mutex.create () in

  let shards =
    Array.init nshards (fun idx ->
        {
          idx;
          ev = Evloop.create backend;
          sessions = Hashtbl.create 16;
          inbox = Queue.create ();
          inbox_mutex = Mutex.create ();
        })
  in
  let shard_of_conn id =
    if nshards = 1 then 0 else id * 0x9E3779B1 land max_int mod nshards
  in
  let post sh msg =
    Mutex.lock sh.inbox_mutex;
    Queue.push msg sh.inbox;
    Mutex.unlock sh.inbox_mutex;
    Evloop.wake sh.ev
  in
  let wake_all () = Array.iter (fun sh -> Evloop.wake sh.ev) shards in

  let stop_signal _ = Atomic.set draining true in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal) in
  let listen_fd = listen_socket address ~backlog:cfg.backlog in
  on_event
    (Printf.sprintf
       "listening on %s (jobs=%d, io-shards=%d, evloop=%s, queue=%d, max-conns=%d)"
       (describe_address address) cfg.analysis.Fuzzy.Analysis.jobs nshards
       (Evloop.backend_name backend) cfg.queue_capacity cfg.max_connections);

  (* ---- HTTP metrics endpoint (owned by shard 0) ------------------- *)
  let metrics_listen =
    match cfg.metrics_port with
    | None -> None
    | Some port ->
        let fd = listen_socket (Tcp port) ~backlog:16 in
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | Unix.ADDR_UNIX _ -> port
        in
        (* Scripts and tests discover an OS-assigned port from this line. *)
        on_event
          (Printf.sprintf "metrics listening on http://127.0.0.1:%d/metrics"
             bound);
        Some fd
  in
  let http_conns : (int, http_conn) Hashtbl.t = Hashtbl.create 8 in
  let next_http_id = ref 0 in
  let sorted_http_conns () =
    List.map snd (Stats.Det.hashtbl_bindings http_conns)
  in
  let exposition () =
    let snapshot, latency, queue_depth, inflight_now =
      locked (fun () ->
          sync_store_counters ();
          sync_admission_counters ();
          ( Metrics.snapshot metrics,
            Metrics.latency metrics,
            !waiting_count,
            !inflight ))
    in
    Exposition.render ~snapshot ~latency ~queue_depth ~inflight:inflight_now
      ~draining:(Atomic.get draining)
  in
  let http_response (r : Metrics_http.Http.request) =
    match (r.meth, r.path) with
    | "GET", "/metrics" -> (
        match exposition () with
        | body ->
            Metrics_http.Http.response ~status:200
              ~content_type:Metrics_http.Http.exposition_content_type body
        | exception Invalid_argument m ->
            (* A malformed family is a bug in Exposition; surface it to the
               scraper instead of killing the shard. *)
            Metrics_http.Http.response ~status:500 ("exposition error: " ^ m ^ "\n"))
    | "GET", "/health" ->
        (* Readiness: accepting work = 200; once draining starts the
           endpoint keeps answering — with 503 — until the drain ends. *)
        if Atomic.get draining then
          Metrics_http.Http.response ~status:503 "draining\n"
        else Metrics_http.Http.response ~status:200 "ok\n"
    | "GET", _ -> Metrics_http.Http.response ~status:404 "not found\n"
    | _, _ -> Metrics_http.Http.response ~status:405 "method not allowed\n"
  in
  let drop_http c =
    Hashtbl.remove http_conns c.hid;
    Evloop.remove shards.(0).ev c.hfd;
    close_quietly c.hfd
  in
  let http_accept_loop mfd =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true mfd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
      | fd, _ ->
          Unix.set_nonblock fd;
          let id = !next_http_id in
          incr next_http_id;
          Hashtbl.replace http_conns id
            {
              hid = id;
              hfd = fd;
              hbuf = Buffer.create 256;
              hout = "";
              hout_off = 0;
              hdone = false;
            };
          Evloop.add shards.(0).ev fd ~read:true ~write:false
    done
  in
  let http_read c =
    let buf = Bytes.create 4096 in
    match Unix.read c.hfd buf 0 (Bytes.length buf) with
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        drop_http c
    | 0 -> drop_http c
    | n ->
        Buffer.add_subbytes c.hbuf buf 0 n;
        if not c.hdone then begin
          let head = Buffer.to_bytes c.hbuf in
          match Metrics_http.Http.parse_request head (Bytes.length head) with
          | Metrics_http.Http.Incomplete -> ()
          | Metrics_http.Http.Bad m ->
              c.hout <- Metrics_http.Http.response ~status:400 (m ^ "\n");
              c.hdone <- true
          | Metrics_http.Http.Request r ->
              c.hout <- http_response r;
              c.hdone <- true
        end
  in
  let http_flush c =
    (* The same loop pass may have dropped this connection already. *)
    if Hashtbl.mem http_conns c.hid then begin
      let continue = ref c.hdone in
      while !continue do
        let remaining = String.length c.hout - c.hout_off in
        if remaining <= 0 then begin
          drop_http c;  (* response fully written: HTTP/1.0, so close *)
          continue := false
        end
        else
          match Unix.write_substring c.hfd c.hout c.hout_off remaining with
          | n -> c.hout_off <- c.hout_off + n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              continue := false  (* evloop write interest resumes this *)
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
              drop_http c;
              continue := false
      done
    end
  in

  let sorted_sessions sh =
    List.map snd (Stats.Det.hashtbl_bindings sh.sessions)
  in
  (* Called only from [sh]'s own thread. *)
  let drop_session sh sess =
    Hashtbl.remove sh.sessions (Session.id sess);
    Evloop.remove sh.ev (Session.fd sess);
    close_quietly (Session.fd sess);
    locked (fun () ->
        decr active;
        Metrics.set_active metrics !active;
        let peer = Session.peer sess in
        match Hashtbl.find_opt peer_refs peer with
        | None -> ()
        | Some 1 ->
            Hashtbl.remove peer_refs peer;
            Admission.forget admission ~peer
        | Some n -> Hashtbl.replace peer_refs peer (n - 1))
  in
  let code_of = function
    | Protocol.Error { code; _ } -> Some (Protocol.error_code_to_string code)
    | Protocol.Report _ | Protocol.Quadrant_verdict _ | Protocol.Curve _
    | Protocol.Verdicts _ | Protocol.Ingest_ack _ | Protocol.Ingest_final _
    | Protocol.Stats_snapshot _ | Protocol.Health_ok _ | Protocol.Shutdown_ack
      ->
        None
  in
  let count_code = function
    | None -> Metrics.incr_ok metrics
    | Some code -> Metrics.incr_error metrics ~code
  in
  (* Inline (non-pooled) response on the owning shard's thread.
     [timing] is the (verb, arrival time) pair for requests that were
     counted by incr_request; undecodable frames pass no timing and
     observe nothing, so at quiescence each verb's histogram count
     equals its requests_by_kind counter. *)
  let respond ?timing sess seq resp =
    locked (fun () ->
        count_code (code_of resp);
        match timing with
        | None -> ()
        | Some (kind, t0) ->
            Metrics.observe_latency metrics ~kind ~seconds:(Clock.now () -. t0));
    Session.put_response sess ~seq (Wire.encode (Protocol.encode_response resp))
  in
  (* Land one routed heavy-request response on [sh]'s own session table.
     Any delivery — including Failed — is a backend outcome for the
     breaker; only Timeout counts as shed. *)
  let apply_delivery sh ~conn ~seq ~frame ~code =
    match Hashtbl.find_opt sh.sessions conn with
    | None -> ()  (* subscriber hung up while the work ran *)
    | Some sess ->
        locked (fun () ->
            count_code code;
            Admission.record admission ~peer:(Session.peer sess)
              ~shed:(code = Some "timeout"));
        Session.put_response sess ~seq frame
  in
  (* Fan one finished pending out to every subscriber: same-shard ones
     directly, the rest via their owner's inbox.  The response is encoded
     once; subscribers share the frame bytes. *)
  let route ~from p resp =
    let frame = Wire.encode (Protocol.encode_response resp) in
    let code = code_of resp in
    (* Latency is observed when the response is produced (here), not when
       each subscriber's bytes hit its socket: one observation per counted
       request, even if a subscriber hung up while the work ran. *)
    let now = Clock.now () in
    locked (fun () ->
        List.iter
          (fun (_, _, t0) ->
            Metrics.observe_latency metrics ~kind:p.kind ~seconds:(now -. t0))
          p.subscribers);
    List.iter
      (fun (conn, seq, _) ->
        let owner = shards.(shard_of_conn conn) in
        if owner.idx = from.idx then apply_delivery owner ~conn ~seq ~frame ~code
        else post owner (Deliver { conn; seq; frame; code }))
      (List.rev p.subscribers)
  in
  let work_for req name () =
    match req with
    | Protocol.Analyze _ ->
        Protocol.Report
          (Fuzzy.Report.analyze_report
             (Fuzzy.Experiments.analyze_cached cfg.analysis name))
    | Protocol.Quadrant _ ->
        let a = Fuzzy.Experiments.analyze_cached cfg.analysis name in
        Protocol.Quadrant_verdict
          {
            workload = name;
            quadrant = a.Fuzzy.Analysis.quadrant;
            cpi_variance = a.Fuzzy.Analysis.cpi_variance;
            re_kopt = a.Fuzzy.Analysis.re_kopt;
            kopt = a.Fuzzy.Analysis.kopt;
            technique =
              Fuzzy.Techniques.(to_string (recommend a.Fuzzy.Analysis.quadrant));
          }
    | Protocol.Re_curve _ ->
        let a = Fuzzy.Experiments.analyze_cached cfg.analysis name in
        Protocol.Curve { workload = name; curve = a.Fuzzy.Analysis.curve }
    | Protocol.Ingest_open _ | Protocol.Ingest_feed _ | Protocol.Ingest_finalize
    | Protocol.Stats | Protocol.Health | Protocol.Shutdown ->
        (* Never queued: these are handled inline at parse time. *)
        Protocol.Error { code = Protocol.Failed; message = "not a pooled request" }
  in
  let enqueue_heavy sess seq req name ~nbytes ~kind ~t0 =
    let respond sess seq resp = respond ~timing:(kind, t0) sess seq resp in
    match Workload.Catalog.find name with
    | exception Not_found ->
        respond sess seq
          (Protocol.Error
             {
               code = Protocol.Unknown_workload;
               message = Printf.sprintf "unknown workload %S" name;
             })
    | _entry -> (
        if Atomic.get draining then
          respond sess seq
            (Protocol.Error
               { code = Protocol.Overloaded; message = "server is draining" })
        else
          let peer = Session.peer sess in
          (* Admission runs before the batching join: a batched arrival
             still spends a token, so the admit/reject sequence is a pure
             function of the peer's own trace. *)
          let decision =
            locked (fun () -> Admission.check admission ~peer ~bytes:nbytes)
          in
          match decision with
          | Admission.Reject_too_large ->
              respond sess seq
                (Protocol.Error
                   {
                     code = Protocol.Too_large;
                     message =
                       Printf.sprintf
                         "request of %d bytes exceeds the admission budget"
                         nbytes;
                   })
          | Admission.Reject_rate_limited ->
              respond sess seq
                (Protocol.Error
                   {
                     code = Protocol.Rate_limited;
                     message = "rate limit exceeded for this peer";
                   })
          | Admission.Reject_breaker_open ->
              respond sess seq
                (Protocol.Error
                   {
                     code = Protocol.Overloaded;
                     message = "circuit breaker open for this peer";
                   })
          | Admission.Admit -> (
              let key = Protocol.encode_request req in
              let verdict =
                locked (fun () ->
                    match Hashtbl.find_opt by_key key with
                    | Some p ->
                        (* Identical request already queued or running:
                           batch. *)
                        Metrics.incr_batch_joined metrics;
                        p.subscribers <-
                          (Session.id sess, seq, t0) :: p.subscribers;
                        `Joined
                    | None ->
                        if !waiting_count >= cfg.queue_capacity then begin
                          (* A shed outcome the breaker must see. *)
                          Admission.record admission ~peer ~shed:true;
                          `Queue_full
                        end
                        else begin
                          if Fuzzy.Experiments.cached cfg.analysis name then
                            Metrics.incr_cache_hit metrics
                          else Metrics.incr_cache_miss metrics;
                          let deadline =
                            Option.map
                              (fun s -> Clock.now () +. s)
                              cfg.request_timeout
                          in
                          let p =
                            {
                              key;
                              kind;
                              work = work_for req name;
                              subscribers = [ (Session.id sess, seq, t0) ];
                              deadline;
                              cancelled = false;
                            }
                          in
                          Hashtbl.replace by_key key p;
                          Queue.push p waiting;
                          incr waiting_count;
                          Metrics.observe_queue_depth metrics !waiting_count;
                          `Queued
                        end)
              in
              match verdict with
              | `Joined | `Queued -> ()
              | `Queue_full ->
                  respond sess seq
                    (Protocol.Error
                       {
                         code = Protocol.Overloaded;
                         message =
                           Printf.sprintf "request queue is full (capacity %d)"
                             cfg.queue_capacity;
                       })))
  in
  let dispatch sess seq req ~nbytes ~kind ~t0 =
    let respond sess seq resp = respond ~timing:(kind, t0) sess seq resp in
    match req with
    | Protocol.Health ->
        respond sess seq
          (Protocol.Health_ok
             {
               version = Wire.version;
               jobs = cfg.analysis.Fuzzy.Analysis.jobs;
               workloads = Array.length Workload.Catalog.all;
             })
    | Protocol.Stats ->
        let snap =
          locked (fun () ->
              sync_store_counters ();
              sync_admission_counters ();
              Metrics.snapshot metrics)
        in
        respond sess seq (Protocol.Stats_snapshot snap)
    | Protocol.Shutdown ->
        Atomic.set draining true;
        on_event "shutdown requested; draining";
        respond sess seq Protocol.Shutdown_ack;
        Session.mark_close sess;
        wake_all ()
    | Protocol.Ingest_open name -> (
        match Session.pipeline sess with
        | Some _ ->
            respond sess seq
              (Protocol.Error
                 {
                   code = Protocol.Failed;
                   message = "an ingest stream is already open on this connection";
                 })
        | None ->
            Session.open_pipeline sess
              (Online.Pipeline.create ~name cfg.pipeline);
            respond sess seq (Protocol.Ingest_ack name))
    | Protocol.Ingest_feed samples -> (
        match Session.pipeline sess with
        | None ->
            respond sess seq
              (Protocol.Error
                 {
                   code = Protocol.Failed;
                   message = "no ingest stream open (send ingest_open first)";
                 })
        | Some p ->
            let verdicts =
              List.filter_map
                (fun s ->
                  Option.map
                    (Format.asprintf "%a" Online.Classifier.pp_verdict)
                    (Online.Pipeline.feed p s))
                samples
            in
            respond sess seq (Protocol.Verdicts verdicts))
    | Protocol.Ingest_finalize -> (
        match Session.pipeline sess with
        | None ->
            respond sess seq
              (Protocol.Error
                 { code = Protocol.Failed; message = "no ingest stream open" })
        | Some p -> (
            Session.close_pipeline sess;
            match Online.Pipeline.finalize p with
            | final ->
                respond sess seq
                  (Protocol.Ingest_final
                     (Format.asprintf "%a@." Online.Pipeline.pp_final final))
            | exception Failure m ->
                respond sess seq
                  (Protocol.Error { code = Protocol.Failed; message = m })
            | exception Invalid_argument m ->
                respond sess seq
                  (Protocol.Error { code = Protocol.Failed; message = m })))
    | Protocol.Analyze name | Protocol.Quadrant name | Protocol.Re_curve name
      ->
        enqueue_heavy sess seq req name ~nbytes ~kind ~t0
  in
  (* The exception boundary of the inline request path: anything the
     analysis layers throw for bad input (Ingest_feed has no other net
     under it) becomes a typed protocol Error instead of unwinding through
     the IO loop and killing the connection.  The deep linter (G003) checks
     that every handler-reachable raise is caught here or earlier. *)
  let handle sess req ~nbytes =
    let seq = Session.alloc_seq sess in
    let kind = Protocol.request_kind req in
    let t0 = Clock.now () in
    locked (fun () -> Metrics.incr_request metrics ~kind);
    match dispatch sess seq req ~nbytes ~kind ~t0 with
    | () -> ()
    | exception Failure m ->
        respond ~timing:(kind, t0) sess seq
          (Protocol.Error { code = Protocol.Failed; message = m })
    | exception Invalid_argument m ->
        respond ~timing:(kind, t0) sess seq
          (Protocol.Error { code = Protocol.Failed; message = m })
    | exception Not_found ->
        respond ~timing:(kind, t0) sess seq
          (Protocol.Error
             { code = Protocol.Failed; message = "internal lookup failed" })
    | exception Assert_failure (file, line, _) ->
        respond ~timing:(kind, t0) sess seq
          (Protocol.Error
             {
               code = Protocol.Failed;
               message = Printf.sprintf "internal invariant failed at %s:%d" file line;
             })
  in
  let rec drain_frames sess =
    if not (Session.closing sess) then
      match Session.next_frame sess ~max_payload:cfg.max_payload with
      | Ok None -> ()
      | Ok (Some payload) ->
          (match Protocol.decode_request payload with
          | Ok req -> handle sess req ~nbytes:(String.length payload)
          | Error m ->
              let seq = Session.alloc_seq sess in
              respond sess seq
                (Protocol.Error { code = Protocol.Bad_request; message = m }));
          drain_frames sess
      | Error e ->
          (* The byte stream itself is corrupt; answer once and close —
             resynchronising inside garbage is guesswork. *)
          let seq = Session.alloc_seq sess in
          respond sess seq
            (Protocol.Error
               { code = Protocol.Bad_request; message = Wire.error_to_string e });
          Session.mark_close sess
  in
  let read_session sh sess =
    let buf = Bytes.create 65536 in
    match Unix.read (Session.fd sess) buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        drop_session sh sess
    | 0 ->
        (* Peer finished sending; flush anything still owed, then close. *)
        if Session.has_pending sess then Session.mark_close sess
        else drop_session sh sess
    | n ->
        Session.feed sess buf n;
        drain_frames sess
  in
  let next_conn_id = ref 0 in
  (* Only from [sh]'s own thread: shard 0 for its own connections, the
     others when an [Accepted] message arrives. *)
  let add_session sh id fd peer =
    let sess = Session.create ~id ~peer fd in
    Hashtbl.replace sh.sessions id sess;
    Evloop.add sh.ev fd ~read:true ~write:false
  in
  (* Shard 0 only.  One readiness event may announce many queued
     connections: drain the whole accept backlog until EAGAIN. *)
  let accept_loop () =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true listen_fd with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ()
      | fd, addr ->
          let refused =
            locked (fun () ->
                if Atomic.get draining || !active >= cfg.max_connections then begin
                  Metrics.incr_refused metrics;
                  true
                end
                else begin
                  incr active;
                  Metrics.incr_accepted metrics;
                  Metrics.set_active metrics !active;
                  false
                end)
          in
          if refused then begin
            let message =
              if Atomic.get draining then "server is draining"
              else
                Printf.sprintf "connection limit reached (max %d)"
                  cfg.max_connections
            in
            let frame =
              Wire.encode
                (Protocol.encode_response
                   (Protocol.Error { code = Protocol.Busy; message }))
            in
            (try write_all fd frame with Unix.Unix_error (_, _, _) -> ());
            close_quietly fd
          end
          else begin
            (* Non-blocking: a client that stops reading must never stall
               a shard — flush_session writes only what the socket
               accepts and the evloop waits for writability. *)
            Unix.set_nonblock fd;
            let id = !next_conn_id in
            incr next_conn_id;
            (* TCP peers share an admission identity per address, so one
               host cannot widen its budget by opening connections; local
               Unix-socket peers are indistinguishable and get a
               per-connection identity instead. *)
            let peer =
              match addr with
              | Unix.ADDR_INET (ip, _) -> Unix.string_of_inet_addr ip
              | Unix.ADDR_UNIX _ -> Printf.sprintf "conn:%d" id
            in
            let sh = shards.(shard_of_conn id) in
            locked (fun () ->
                Hashtbl.replace peer_refs peer
                  (1 + Option.value ~default:0 (Hashtbl.find_opt peer_refs peer));
                Metrics.incr_shard_accept metrics ~shard:sh.idx);
            if sh.idx = 0 then add_session sh id fd peer
            else post sh (Accepted { id; fd; peer })
          end
    done
  in
  let process_inbox sh =
    Mutex.lock sh.inbox_mutex;
    let msgs = Queue.fold (fun acc m -> m :: acc) [] sh.inbox in
    Queue.clear sh.inbox;
    Mutex.unlock sh.inbox_mutex;
    List.iter
      (function
        | Accepted { id; fd; peer } -> add_session sh id fd peer
        | Deliver { conn; seq; frame; code } ->
            apply_delivery sh ~conn ~seq ~frame ~code)
      (List.rev msgs)
  in
  (* [inflight] is decremented only after the result's deliveries are
     posted, so "no inflight and empty queues" really means "nothing can
     still arrive" — the shards' exit condition relies on that. *)
  let drain_completions sh =
    Mutex.lock completions_mutex;
    let finished = Queue.fold (fun acc item -> item :: acc) [] completions in
    Queue.clear completions;
    Mutex.unlock completions_mutex;
    List.iter
      (fun (key, resp) ->
        let p =
          locked (fun () ->
              match Hashtbl.find_opt by_key key with
              | None -> None
              | Some p ->
                  Hashtbl.remove by_key key;
                  Some p)
        in
        (match p with None -> () | Some p -> route ~from:sh p resp);
        locked (fun () -> decr inflight))
      (List.rev finished)
  in
  (* Expiry runs before submission (shard 0 owns both for the waiting
     queue's head), so a request either times out while waiting or runs
     to completion — for [--timeout 0] that makes the Timeout answer
     deterministic at every jobs value. *)
  let expire_waiting sh =
    let expired =
      locked (fun () ->
          let acc = ref [] in
          Queue.iter
            (fun p ->
              if (not p.cancelled) && Clock.expired ~deadline:p.deadline then begin
                p.cancelled <- true;
                decr waiting_count;
                Hashtbl.remove by_key p.key;
                acc := p :: !acc
              end)
            waiting;
          List.rev !acc)
    in
    List.iter
      (fun p ->
        route ~from:sh p
          (Protocol.Error
             {
               code = Protocol.Timeout;
               message = "deadline exceeded while queued";
             }))
      expired
  in
  let submit p =
    ignore
      (Parallel.Pool.submit pool (fun () ->
           let resp =
             match p.work () with
             | resp -> resp
             | exception Failure m ->
                 Protocol.Error { code = Protocol.Failed; message = m }
             | exception Invalid_argument m ->
                 Protocol.Error { code = Protocol.Failed; message = m }
             | exception Not_found ->
                 Protocol.Error
                   { code = Protocol.Failed; message = "lookup failed" }
             | exception e ->
                 (* Catch-all: every submitted pending must produce exactly
                    one completion, or [inflight] never drains and the
                    subscribers hang forever. *)
                 Protocol.Error
                   { code = Protocol.Failed; message = Printexc.to_string e }
           in
           Mutex.lock completions_mutex;
           Queue.push (p.key, resp) completions;
           Mutex.unlock completions_mutex;
           wake_all ()))
  in
  let submit_ready () =
    (* Collect under the lock, submit outside it: at jobs=1 the pool runs
       the task inline inside [submit], and the task needs [core]. *)
    let ready =
      locked (fun () ->
          let acc = ref [] in
          let continue = ref true in
          while !continue do
            if !inflight < max_inflight && not (Queue.is_empty waiting) then begin
              let p = Queue.pop waiting in
              (* A cancelled entry was already answered with Timeout. *)
              if not p.cancelled then begin
                decr waiting_count;
                incr inflight;
                Metrics.observe_inflight metrics !inflight;
                acc := p :: !acc
              end
            end
            else continue := false
          done;
          List.rev !acc)
    in
    List.iter submit ready
  in
  (* Write as much owed output as the (non-blocking) socket accepts.
     A short or refused write leaves the session with write interest in
     the evloop; the loop resumes exactly where it stopped, so one
     stalled client never blocks the other connections. *)
  let flush_session sh sess =
    let rec go () =
      match Session.next_write sess with
      | None ->
          if Session.closing sess && not (Session.has_pending sess) then
            drop_session sh sess
      | Some (frame, off) -> (
          match
            Unix.write_substring (Session.fd sess) frame off
              (String.length frame - off)
          with
          | n ->
              Session.advance sess n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              ()  (* socket full; the evloop will report writability *)
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
              drop_session sh sess)
    in
    go ()
  in
  let queue_empty q m =
    Mutex.lock m;
    let e = Queue.is_empty q in
    Mutex.unlock m;
    e
  in
  (* A shard may stop once nothing global is in flight and it owes its
     own sessions nothing.  Other shards may still be flushing theirs. *)
  let shard_done sh =
    Atomic.get draining
    && locked (fun () -> !waiting_count = 0 && !inflight = 0)
    && queue_empty completions completions_mutex
    && queue_empty sh.inbox sh.inbox_mutex
    && List.for_all (fun s -> not (Session.has_pending s)) (sorted_sessions sh)
  in
  let announced_drain = ref false in
  let rec shard_loop sh =
    if sh.idx = 0 && Atomic.get draining && not !announced_drain then begin
      announced_drain := true;
      on_event "draining: refusing new work, finishing in-flight requests"
    end;
    if shard_done sh then ()
    else begin
      List.iter
        (fun s ->
          Evloop.modify sh.ev (Session.fd s) ~read:true
            ~write:(Session.has_output s))
        (sorted_sessions sh);
      if sh.idx = 0 then
        List.iter
          (fun c ->
            Evloop.modify sh.ev c.hfd ~read:(not c.hdone)
              ~write:(c.hdone && c.hout_off < String.length c.hout))
          (sorted_http_conns ());
      Evloop.wait sh.ev ~timeout_ms:100;
      if sh.idx = 0 && Evloop.readable sh.ev listen_fd then accept_loop ();
      if sh.idx = 0 then begin
        (match metrics_listen with
        | Some mfd when Evloop.readable sh.ev mfd -> http_accept_loop mfd
        | Some _ | None -> ());
        List.iter
          (fun c -> if Evloop.readable sh.ev c.hfd then http_read c)
          (sorted_http_conns ())
      end;
      process_inbox sh;
      List.iter
        (fun sess ->
          if Evloop.readable sh.ev (Session.fd sess) then read_session sh sess)
        (sorted_sessions sh);
      drain_completions sh;
      if sh.idx = 0 then expire_waiting sh;
      submit_ready ();
      List.iter (fun sess -> flush_session sh sess) (sorted_sessions sh);
      if sh.idx = 0 then List.iter http_flush (sorted_http_conns ());
      shard_loop sh
    end
  in
  let finish_shard sh =
    List.iter (fun sess -> drop_session sh sess) (sorted_sessions sh);
    Evloop.close sh.ev
  in
  Evloop.add shards.(0).ev listen_fd ~read:true ~write:false;
  Option.iter
    (fun mfd -> Evloop.add shards.(0).ev mfd ~read:true ~write:false)
    metrics_listen;
  let workers =
    Array.map
      (fun sh -> Parallel.Io.spawn (fun () -> shard_loop sh; finish_shard sh))
      (Array.sub shards 1 (nshards - 1))
  in
  shard_loop shards.(0);
  (* The metrics endpoint dies with shard 0: drop scrape connections and
     the listener before the shard's evloop closes. *)
  List.iter drop_http (sorted_http_conns ());
  Option.iter
    (fun mfd ->
      Evloop.remove shards.(0).ev mfd;
      close_quietly mfd)
    metrics_listen;
  finish_shard shards.(0);
  Array.iter Parallel.Io.join workers;
  on_event "drained; shutting down";
  close_quietly listen_fd;
  (match address with
  | Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ());
  Sys.set_signal Sys.sigpipe old_pipe;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  sync_store_counters ();
  sync_admission_counters ();
  Metrics.snapshot metrics
