type address = Unix_socket of string | Tcp of int

type config = {
  analysis : Fuzzy.Analysis.config;
  pipeline : Online.Pipeline.config;
  queue_capacity : int;
  max_connections : int;
  request_timeout : float option;
  max_payload : int;
  store_counters : unit -> (int * int * int * int) option;
      (* (hits, misses, writes, corrupt) of the attached persistent
         store, or None when serving without one.  A callback so serve
         stays independent of lib/store; polled before each snapshot. *)
}

let config_of_analysis analysis =
  {
    analysis;
    pipeline = { Online.Pipeline.default with analysis };
    queue_capacity = 64;
    max_connections = 32;
    request_timeout = None;
    max_payload = Wire.default_max_payload;
    store_counters = (fun () -> None);
  }

let describe_address = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp port -> Printf.sprintf "tcp:127.0.0.1:%d" port

(* One queued-or-batched heavy request.  [key] is the encoded request —
   two requests with equal bytes are the same work, so later arrivals
   join [subscribers] instead of queueing a second copy. *)
type pending = {
  key : string;
  work : unit -> Protocol.response;
  mutable subscribers : (int * int) list;  (* (connection id, seq) *)
  deadline : float option;
  mutable cancelled : bool;
}

let write_all fd s =
  let len = String.length s in
  let rec go off remaining =
    if remaining > 0 then
      match Unix.write_substring fd s off remaining with
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
  in
  go 0 len

let close_quietly fd =
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let listen_socket address =
  match address with
  | Unix_socket path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } ->
          (* A previous server died without cleaning up; the bind below
             would fail on the stale node. *)
          Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let run ?(on_event = fun _ -> ()) cfg address =
  let metrics = Metrics.create () in
  let sync_store_counters () =
    match cfg.store_counters () with
    | Some (hits, misses, writes, corrupt) ->
        Metrics.set_store metrics ~hits ~misses ~writes ~corrupt
    | None -> ()
  in
  let pool = Fuzzy.Analysis.pool cfg.analysis in
  let max_inflight = Parallel.Pool.jobs pool in
  let sessions : (int, Session.t) Hashtbl.t = Hashtbl.create 16 in
  let by_key : (string, pending) Hashtbl.t = Hashtbl.create 16 in
  let waiting : pending Queue.t = Queue.create () in
  let waiting_count = ref 0 in
  let inflight = ref 0 in
  let draining = ref false in
  let next_conn_id = ref 0 in
  (* Pool workers finish here; the IO thread drains after a wake byte. *)
  let completions : (string * Protocol.response) Queue.t = Queue.create () in
  let completions_mutex = Mutex.create () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let wake () =
    try ignore (Unix.write_substring wake_w "x" 0 1)
    with Unix.Unix_error (_, _, _) -> ()
  in
  let stop_signal _ = draining := true in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal) in
  let listen_fd = listen_socket address in
  on_event
    (Printf.sprintf "listening on %s (jobs=%d, queue=%d, max-conns=%d)"
       (describe_address address) cfg.analysis.Fuzzy.Analysis.jobs
       cfg.queue_capacity cfg.max_connections);

  let sorted_sessions () =
    List.map snd (Stats.Det.hashtbl_bindings sessions)
  in
  let drop_session sess =
    Hashtbl.remove sessions (Session.id sess);
    close_quietly (Session.fd sess);
    Metrics.set_active metrics (Hashtbl.length sessions)
  in
  let count_response resp =
    match resp with
    | Protocol.Error { code; _ } ->
        Metrics.incr_error metrics ~code:(Protocol.error_code_to_string code)
    | Protocol.Report _ | Protocol.Quadrant_verdict _ | Protocol.Curve _
    | Protocol.Verdicts _ | Protocol.Ingest_ack _ | Protocol.Ingest_final _
    | Protocol.Stats_snapshot _ | Protocol.Health_ok _ | Protocol.Shutdown_ack
      ->
        Metrics.incr_ok metrics
  in
  let respond sess seq resp =
    count_response resp;
    Session.put_response sess ~seq (Wire.encode (Protocol.encode_response resp))
  in
  (* Deliver one finished pending to every subscriber still connected.
     The response is encoded once; subscribers share the frame bytes. *)
  let deliver p resp =
    Hashtbl.remove by_key p.key;
    let frame = Wire.encode (Protocol.encode_response resp) in
    List.iter
      (fun (conn_id, seq) ->
        match Hashtbl.find_opt sessions conn_id with
        | None -> ()  (* subscriber hung up while the work ran *)
        | Some sess ->
            count_response resp;
            Session.put_response sess ~seq frame)
      (List.rev p.subscribers)
  in
  let work_for req name () =
    match req with
    | Protocol.Analyze _ ->
        Protocol.Report
          (Fuzzy.Report.analyze_report
             (Fuzzy.Experiments.analyze_cached cfg.analysis name))
    | Protocol.Quadrant _ ->
        let a = Fuzzy.Experiments.analyze_cached cfg.analysis name in
        Protocol.Quadrant_verdict
          {
            workload = name;
            quadrant = a.Fuzzy.Analysis.quadrant;
            cpi_variance = a.Fuzzy.Analysis.cpi_variance;
            re_kopt = a.Fuzzy.Analysis.re_kopt;
            kopt = a.Fuzzy.Analysis.kopt;
            technique =
              Fuzzy.Techniques.(to_string (recommend a.Fuzzy.Analysis.quadrant));
          }
    | Protocol.Re_curve _ ->
        let a = Fuzzy.Experiments.analyze_cached cfg.analysis name in
        Protocol.Curve { workload = name; curve = a.Fuzzy.Analysis.curve }
    | Protocol.Ingest_open _ | Protocol.Ingest_feed _ | Protocol.Ingest_finalize
    | Protocol.Stats | Protocol.Health | Protocol.Shutdown ->
        (* Never queued: these are handled inline at parse time. *)
        Protocol.Error { code = Protocol.Failed; message = "not a pooled request" }
  in
  let enqueue_heavy sess seq req name =
    match Workload.Catalog.find name with
    | exception Not_found ->
        respond sess seq
          (Protocol.Error
             {
               code = Protocol.Unknown_workload;
               message = Printf.sprintf "unknown workload %S" name;
             })
    | _entry -> (
        if !draining then
          respond sess seq
            (Protocol.Error
               { code = Protocol.Overloaded; message = "server is draining" })
        else
          let key = Protocol.encode_request req in
          match Hashtbl.find_opt by_key key with
          | Some p ->
              (* Identical request already queued or running: batch. *)
              Metrics.incr_batch_joined metrics;
              p.subscribers <- (Session.id sess, seq) :: p.subscribers
          | None ->
              if !waiting_count >= cfg.queue_capacity then
                respond sess seq
                  (Protocol.Error
                     {
                       code = Protocol.Overloaded;
                       message =
                         Printf.sprintf "request queue is full (capacity %d)"
                           cfg.queue_capacity;
                     })
              else begin
                if Fuzzy.Experiments.cached cfg.analysis name then
                  Metrics.incr_cache_hit metrics
                else Metrics.incr_cache_miss metrics;
                let deadline =
                  Option.map (fun s -> Clock.now () +. s) cfg.request_timeout
                in
                let p =
                  {
                    key;
                    work = work_for req name;
                    subscribers = [ (Session.id sess, seq) ];
                    deadline;
                    cancelled = false;
                  }
                in
                Hashtbl.replace by_key key p;
                Queue.push p waiting;
                incr waiting_count;
                Metrics.observe_queue_depth metrics !waiting_count
              end)
  in
  let dispatch sess seq req =
    match req with
    | Protocol.Health ->
        respond sess seq
          (Protocol.Health_ok
             {
               version = Wire.version;
               jobs = cfg.analysis.Fuzzy.Analysis.jobs;
               workloads = Array.length Workload.Catalog.all;
             })
    | Protocol.Stats ->
        sync_store_counters ();
        respond sess seq (Protocol.Stats_snapshot (Metrics.snapshot metrics))
    | Protocol.Shutdown ->
        draining := true;
        on_event "shutdown requested; draining";
        respond sess seq Protocol.Shutdown_ack;
        Session.mark_close sess
    | Protocol.Ingest_open name -> (
        match Session.pipeline sess with
        | Some _ ->
            respond sess seq
              (Protocol.Error
                 {
                   code = Protocol.Failed;
                   message = "an ingest stream is already open on this connection";
                 })
        | None ->
            Session.open_pipeline sess
              (Online.Pipeline.create ~name cfg.pipeline);
            respond sess seq (Protocol.Ingest_ack name))
    | Protocol.Ingest_feed samples -> (
        match Session.pipeline sess with
        | None ->
            respond sess seq
              (Protocol.Error
                 {
                   code = Protocol.Failed;
                   message = "no ingest stream open (send ingest_open first)";
                 })
        | Some p ->
            let verdicts =
              List.filter_map
                (fun s ->
                  Option.map
                    (Format.asprintf "%a" Online.Classifier.pp_verdict)
                    (Online.Pipeline.feed p s))
                samples
            in
            respond sess seq (Protocol.Verdicts verdicts))
    | Protocol.Ingest_finalize -> (
        match Session.pipeline sess with
        | None ->
            respond sess seq
              (Protocol.Error
                 { code = Protocol.Failed; message = "no ingest stream open" })
        | Some p -> (
            Session.close_pipeline sess;
            match Online.Pipeline.finalize p with
            | final ->
                respond sess seq
                  (Protocol.Ingest_final
                     (Format.asprintf "%a@." Online.Pipeline.pp_final final))
            | exception Failure m ->
                respond sess seq
                  (Protocol.Error { code = Protocol.Failed; message = m })
            | exception Invalid_argument m ->
                respond sess seq
                  (Protocol.Error { code = Protocol.Failed; message = m })))
    | Protocol.Analyze name | Protocol.Quadrant name | Protocol.Re_curve name
      ->
        enqueue_heavy sess seq req name
  in
  (* The exception boundary of the inline request path: anything the
     analysis layers throw for bad input (Ingest_feed has no other net
     under it) becomes a typed protocol Error instead of unwinding through
     the IO loop and killing the connection.  The deep linter (G003) checks
     that every handler-reachable raise is caught here or earlier. *)
  let handle sess req =
    let seq = Session.alloc_seq sess in
    Metrics.incr_request metrics ~kind:(Protocol.request_kind req);
    match dispatch sess seq req with
    | () -> ()
    | exception Failure m ->
        respond sess seq (Protocol.Error { code = Protocol.Failed; message = m })
    | exception Invalid_argument m ->
        respond sess seq (Protocol.Error { code = Protocol.Failed; message = m })
    | exception Not_found ->
        respond sess seq
          (Protocol.Error
             { code = Protocol.Failed; message = "internal lookup failed" })
    | exception Assert_failure (file, line, _) ->
        respond sess seq
          (Protocol.Error
             {
               code = Protocol.Failed;
               message = Printf.sprintf "internal invariant failed at %s:%d" file line;
             })
  in
  let rec drain_frames sess =
    if not (Session.closing sess) then
      match Session.next_frame sess ~max_payload:cfg.max_payload with
      | Ok None -> ()
      | Ok (Some payload) ->
          (match Protocol.decode_request payload with
          | Ok req -> handle sess req
          | Error m ->
              let seq = Session.alloc_seq sess in
              respond sess seq
                (Protocol.Error { code = Protocol.Bad_request; message = m }));
          drain_frames sess
      | Error e ->
          (* The byte stream itself is corrupt; answer once and close —
             resynchronising inside garbage is guesswork. *)
          let seq = Session.alloc_seq sess in
          respond sess seq
            (Protocol.Error
               { code = Protocol.Bad_request; message = Wire.error_to_string e });
          Session.mark_close sess
  in
  let read_session sess =
    let buf = Bytes.create 65536 in
    match Unix.read (Session.fd sess) buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        drop_session sess
    | 0 ->
        (* Peer finished sending; flush anything still owed, then close. *)
        if Session.has_pending sess then Session.mark_close sess
        else drop_session sess
    | n ->
        Session.feed sess buf n;
        drain_frames sess
  in
  let accept_connection () =
    match Unix.accept ~cloexec:true listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _addr ->
        if !draining || Hashtbl.length sessions >= cfg.max_connections then begin
          Metrics.incr_refused metrics;
          let message =
            if !draining then "server is draining"
            else
              Printf.sprintf "connection limit reached (max %d)"
                cfg.max_connections
          in
          let frame =
            Wire.encode
              (Protocol.encode_response
                 (Protocol.Error { code = Protocol.Busy; message }))
          in
          (try write_all fd frame with Unix.Unix_error (_, _, _) -> ());
          close_quietly fd
        end
        else begin
          Metrics.incr_accepted metrics;
          (* Non-blocking: a client that stops reading must never stall
             the IO thread — flush_session writes only what the socket
             accepts and select waits for writability. *)
          Unix.set_nonblock fd;
          let id = !next_conn_id in
          incr next_conn_id;
          Hashtbl.replace sessions id (Session.create ~id fd);
          Metrics.set_active metrics (Hashtbl.length sessions)
        end
  in
  let drain_wake () =
    let buf = Bytes.create 256 in
    match Unix.read wake_r buf 0 (Bytes.length buf) with
    | _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  let drain_completions () =
    Mutex.lock completions_mutex;
    let finished = Queue.fold (fun acc item -> item :: acc) [] completions in
    Queue.clear completions;
    Mutex.unlock completions_mutex;
    List.iter
      (fun (key, resp) ->
        decr inflight;
        match Hashtbl.find_opt by_key key with
        | None -> ()
        | Some p -> deliver p resp)
      (List.rev finished)
  in
  (* Expiry runs before submission, so a request either times out while
     waiting or runs to completion — for [--timeout 0] that makes the
     Timeout answer deterministic at every jobs value. *)
  let expire_waiting () =
    Queue.iter
      (fun p ->
        if (not p.cancelled) && Clock.expired ~deadline:p.deadline then begin
          p.cancelled <- true;
          decr waiting_count;
          deliver p
            (Protocol.Error
               {
                 code = Protocol.Timeout;
                 message = "deadline exceeded while queued";
               })
        end)
      waiting
  in
  let submit p =
    incr inflight;
    Metrics.observe_inflight metrics !inflight;
    ignore
      (Parallel.Pool.submit pool (fun () ->
           let resp =
             match p.work () with
             | resp -> resp
             | exception Failure m ->
                 Protocol.Error { code = Protocol.Failed; message = m }
             | exception Invalid_argument m ->
                 Protocol.Error { code = Protocol.Failed; message = m }
             | exception Not_found ->
                 Protocol.Error
                   { code = Protocol.Failed; message = "lookup failed" }
             | exception e ->
                 (* Catch-all: every submitted pending must produce exactly
                    one completion, or [inflight] never drains and the
                    subscribers hang forever. *)
                 Protocol.Error
                   { code = Protocol.Failed; message = Printexc.to_string e }
           in
           Mutex.lock completions_mutex;
           Queue.push (p.key, resp) completions;
           Mutex.unlock completions_mutex;
           wake ()))
  in
  let submit_ready () =
    while !inflight < max_inflight && not (Queue.is_empty waiting) do
      let p = Queue.pop waiting in
      (* A cancelled entry was already answered with Timeout. *)
      if not p.cancelled then begin
        decr waiting_count;
        submit p
      end
    done
  in
  (* Write as much owed output as the (non-blocking) socket accepts.
     A short or refused write leaves the session in select's write set;
     the loop resumes exactly where it stopped, so one stalled client
     never blocks the other connections. *)
  let flush_session sess =
    let rec go () =
      match Session.next_write sess with
      | None ->
          if Session.closing sess && not (Session.has_pending sess) then
            drop_session sess
      | Some (frame, off) -> (
          match
            Unix.write_substring (Session.fd sess) frame off
              (String.length frame - off)
          with
          | n ->
              Session.advance sess n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              ()  (* socket full; select will report writability *)
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
              drop_session sess)
    in
    go ()
  in
  let drained () =
    !draining && !waiting_count = 0 && !inflight = 0
    && List.for_all (fun s -> not (Session.has_pending s)) (sorted_sessions ())
  in
  let announced_drain = ref false in
  let rec loop () =
    if !draining && not !announced_drain then begin
      announced_drain := true;
      on_event "draining: refusing new work, finishing in-flight requests"
    end;
    if drained () then ()
    else begin
      let session_fds = List.map Session.fd (sorted_sessions ()) in
      let watched = (wake_r :: listen_fd :: session_fds : Unix.file_descr list) in
      let want_write =
        List.filter_map
          (fun s -> if Session.has_output s then Some (Session.fd s) else None)
          (sorted_sessions ())
      in
      let readable =
        match Unix.select watched want_write [] 0.1 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      if List.memq wake_r readable then drain_wake ();
      if List.memq listen_fd readable then accept_connection ();
      List.iter
        (fun sess -> if List.memq (Session.fd sess) readable then read_session sess)
        (sorted_sessions ());
      drain_completions ();
      expire_waiting ();
      submit_ready ();
      List.iter flush_session (sorted_sessions ());
      loop ()
    end
  in
  loop ();
  on_event "drained; shutting down";
  List.iter drop_session (sorted_sessions ());
  close_quietly listen_fd;
  close_quietly wake_r;
  close_quietly wake_w;
  (match address with
  | Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ());
  Sys.set_signal Sys.sigpipe old_pipe;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  sync_store_counters ();
  Metrics.snapshot metrics
