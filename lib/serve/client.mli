(** Blocking client for the analysis server: connect, exchange framed
    {!Protocol} messages one at a time, close.

    The client is deliberately dumb — encode, write, read, decode — so
    the bytes on the wire are exactly {!Protocol.encode_request} and the
    response bytes can be compared across servers with [cmp]
    ({!call_raw} exposes them for the byte-equality tests). *)

type t

val connect : ?retry_for:int -> Server.address -> t
(** Open a connection.  [retry_for] (default 0) retries up to that many
    times at 50 ms intervals while the server is still coming up
    (connection refused / socket file not yet bound) — used by tests and
    the CLI's [--wait] flag.

    @raise Unix.Unix_error when the (final) attempt fails. *)

val call : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and block for its response.  [Error _] means a
    transport or decode failure (the server's typed failures arrive as
    [Ok (Protocol.Error _)]). *)

val call_raw : t -> Protocol.request -> (string, string) result
(** Like {!call} but returns the raw response payload bytes, undecoded —
    the unit of the jobs-equivalence byte-equality tests. *)

val close : t -> unit

val with_connection :
  ?retry_for:int -> Server.address -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)
