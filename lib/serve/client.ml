type t = { fd : Unix.file_descr; mutable open_ : bool }

let sockaddr_of = function
  | Server.Unix_socket path -> Unix.ADDR_UNIX path
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

(* Attempt-counted retries (not clock-based: D002 keeps wall-clock reads
   out of everything but Clock and bench/). *)
let connect ?(retry_for = 0) address =
  let addr = sockaddr_of address in
  let attempt () =
    let fd =
      Unix.socket ~cloexec:true
        (Unix.domain_of_sockaddr addr)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd addr with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        raise e
  in
  let rec go tries_left =
    match attempt () with
    | fd -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when tries_left > 0 ->
        Unix.sleepf 0.05;
        go (tries_left - 1)
  in
  { fd = go retry_for; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

let call_raw t req =
  if not t.open_ then Error "connection is closed"
  else
    match Wire.write_frame t.fd (Protocol.encode_request req) with
    | () -> (
        match Wire.read_frame t.fd with
        | Ok payload -> Ok payload
        | Error e -> Error (Wire.error_to_string e))
    | exception Unix.Unix_error (err, _, _) ->
        Error (Printf.sprintf "write failed: %s" (Unix.error_message err))

let call t req =
  match call_raw t req with
  | Error _ as e -> e
  | Ok payload -> (
      match Protocol.decode_response payload with
      | Ok _ as ok -> ok
      | Error m -> Error (Printf.sprintf "bad response payload: %s" m))

let with_connection ?retry_for address f =
  let t = connect ?retry_for address in
  match f t with
  | v ->
      close t;
      v
  | exception e ->
      close t;
      raise e
