(** Serving metrics: deterministic counters and gauges, plus per-verb
    latency histograms for the HTTP [/metrics] exposition.

    The counters are a pure function of the request history the server
    has processed — no timestamps, no durations, no load averages — so a
    scripted client session produces a byte-identical [stats] response on
    every run and every [--jobs] value.

    The latency histograms are the one deliberately clock-fed surface:
    the server observes durations (read via [Serve.Clock]) at its
    response sites.  They are exposed ONLY through {!latency} for the
    HTTP exposition — they never enter {!snapshot}, so the binary stats
    RPC keeps its byte-identity guarantee.

    The structure itself is not synchronized: the server mutates a [t]
    only under its core lock (shards and pool completions all funnel
    through it); snapshots are plain immutable records carried over the
    [stats] RPC. *)

type t

val bucket_bounds : float array
(** Fixed log-spaced histogram bucket upper bounds in seconds: 1 us
    doubling up to ~8.4 s (24 bounds; observations above the last bound
    land in the implicit overflow bucket).  Fixed at build time so the
    exposition's bucket layout never changes without a code change. *)

type hist_snapshot = {
  hist_kind : string;  (** request verb, e.g. ["analyze"] *)
  hist_buckets : int array;
      (** per-bucket (NOT cumulative) counts aligned with
          {!bucket_bounds}; one extra trailing entry is the overflow
          bucket *)
  hist_sum : float;  (** sum of observed durations, seconds *)
  hist_count : int;
}

type snapshot = {
  connections_accepted : int;
  connections_active : int;  (** gauge: currently open sessions *)
  connections_refused : int;  (** turned away at the max-connections cap *)
  requests_total : int;
  requests_by_kind : (string * int) list;  (** sorted by kind *)
  responses_ok : int;
  responses_error : (string * int) list;  (** error code -> count, sorted *)
  batch_joined : int;
      (** requests answered by subscribing to an identical in-flight
          computation instead of queueing their own *)
  cache_hits : int;  (** analysis cache already held the workload *)
  cache_misses : int;
  store_hits : int;  (** persistent store served a validated entry *)
  store_misses : int;
  store_writes : int;  (** new entries persisted *)
  store_corrupt : int;  (** entries quarantined as invalid *)
  queue_high_water : int;  (** deepest the bounded request queue has been *)
  inflight_high_water : int;  (** most pool tasks outstanding at once *)
  io_shards : int;  (** accept/IO domains this server runs *)
  accepted_by_shard : (string * int) list;
      (** two-digit shard id -> connections assigned, sorted *)
  admission_admitted : int;  (** heavy requests past every admission gate *)
  admission_rate_limited : int;  (** refused: peer token bucket empty *)
  admission_too_large : int;  (** refused: request over the size budget *)
  admission_breaker_rejected : int;  (** refused: peer circuit breaker open *)
  admission_breaker_trips : int;  (** times any peer breaker opened *)
}

val create : unit -> t

val incr_accepted : t -> unit
val incr_refused : t -> unit
val set_active : t -> int -> unit
val incr_request : t -> kind:string -> unit
val incr_ok : t -> unit
val incr_error : t -> code:string -> unit
val incr_batch_joined : t -> unit
val incr_cache_hit : t -> unit
val incr_cache_miss : t -> unit

val set_store : t -> hits:int -> misses:int -> writes:int -> corrupt:int -> unit
(** Copy the persistent store's counters into the metrics (all zero when
    no store is attached).  Called before each snapshot; the store owns
    the running totals. *)

val set_io_shards : t -> int -> unit
val incr_shard_accept : t -> shard:int -> unit

val set_admission :
  t ->
  admitted:int ->
  rate_limited:int ->
  too_large:int ->
  breaker_rejected:int ->
  breaker_trips:int ->
  unit
(** Copy the admission layer's counters in (all zero when admission is
    off).  Called before each snapshot; [lib/admission] owns the running
    totals. *)

val observe_queue_depth : t -> int -> unit
val observe_inflight : t -> int -> unit

val observe_latency : t -> kind:string -> seconds:float -> unit
(** Record one request's wall-clock duration into the per-verb
    histogram.  Negative durations (a clock stepping backwards) clamp to
    zero.  Call sites pair 1:1 with [incr_request] observations so that
    at quiescence each verb's histogram count equals its
    [requests_by_kind] counter. *)

val latency : t -> hist_snapshot list
(** Per-verb histograms, sorted by verb.  This is the only way latency
    data leaves [t] — deliberately not part of {!snapshot}. *)

val snapshot : t -> snapshot

val render : snapshot -> string
(** Fixed-format table, one metric per line, keys sorted — the output of
    [repro serve --status] and [repro client stats]. *)
