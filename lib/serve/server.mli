(** The analysis server: [io_shards] accept/IO event loops ({!Evloop}:
    epoll or select) that parse framed {!Protocol} requests, gate the
    heavy ones through {!Admission} and fan them out onto the shared
    {!Parallel.Pool}.

    {b Concurrency shape.}  Shard 0 runs on the calling thread and owns
    the listening socket; shards 1..N-1 are {!Parallel.Io} domains.  A
    connection is assigned [shard = hash id mod N] at accept time and
    everything about it — socket IO, frame parsing, its {!Session}
    ledger — happens only on that shard; cross-shard traffic (accepted
    connections, routed responses) moves through per-shard mailboxes and
    evloop wakeups.  Request {e work} (workload analysis) runs on pool
    workers, which hand results back through a mutex-guarded completion
    queue; shared bookkeeping (queue, batching table, metrics,
    admission) sits behind one core lock.  Responses are computed in
    whatever order the pool finishes them but written strictly in
    per-connection request order ({!Session}), so a conversation's bytes
    are a pure function of the requests — bit-identical for every
    [--jobs], every [--io-shards] and both evloop backends.

    {b Admission.}  When configured, heavy requests pass a per-peer
    token bucket, a request-size budget and a per-peer circuit breaker
    {e before} touching the queue; refusals are typed
    ([rate_limited]/[too_large]/[overloaded]).  All admission state
    advances on request-count ticks, never the clock ({!Admission}).

    {b Backpressure.}  Heavy requests wait in a bounded FIFO; when it is
    full the server answers [Error Overloaded] immediately instead of
    queueing without bound.  Identical in-flight requests are batched:
    the work runs once and every subscriber receives the same encoded
    response ("pool-backed batching").

    {b Deadlines.}  [request_timeout] bounds how long a request may wait
    in the queue: expiry is checked {e before} submission, so a request
    either times out while waiting (deterministically, for [--timeout 0])
    or runs to completion — a result is never half-delivered.

    {b Shutdown.}  A [Shutdown] request or SIGINT/SIGTERM starts a drain:
    new connections are refused, new heavy requests answer [Overloaded],
    queued and in-flight work completes, owed responses flush, then the
    server closes everything and returns its final metrics snapshot.

    {b Operational surface.}  With [metrics_port] set, shard 0 also
    serves a loopback HTTP/1.0 endpoint: [GET /metrics] renders the
    Prometheus text exposition ({!Exposition}) and [GET /health] answers
    200 while accepting and 503 for the whole drain window.  Request
    latency (arrival to response, read via {!Clock}) feeds per-verb
    histograms that appear {e only} in the exposition — the binary
    [stats] RPC stays clock-free and byte-deterministic. *)

type address = Unix_socket of string | Tcp of int

type config = {
  analysis : Fuzzy.Analysis.config;
      (** the configuration every served analysis runs under (seed,
          scale, interval geometry, [jobs] = pool width) *)
  pipeline : Online.Pipeline.config;  (** per-session ingest streams *)
  queue_capacity : int;  (** bounded heavy-request queue *)
  max_connections : int;  (** cap; excess connections get [Busy] *)
  request_timeout : float option;  (** max seconds queued, [None] = no limit *)
  max_payload : int;  (** per-frame payload cap in bytes *)
  io_shards : int;  (** accept/IO domains (clamped to at least 1) *)
  backlog : int;  (** listen(2) backlog *)
  evloop : Evloop.backend option;  (** [None] = {!Evloop.best} *)
  admission : Admission.config;  (** {!Admission.off} disables all gates *)
  store_counters : unit -> (int * int * int * int) option;
      (** (hits, misses, writes, corrupt) of the attached persistent
          result store, or [None] when serving without one.  Polled
          before each metrics snapshot; a callback so serve does not
          depend on lib/store. *)
  metrics_port : int option;
      (** loopback TCP port for the HTTP [/metrics] + [/health]
          endpoint; [Some 0] binds an OS-assigned port (reported through
          [on_event] as "metrics listening on ..."); [None] = none *)
}

val default_backlog : int
(** 128 — [SOMAXCONN]-ish; the kernel clamps to its own limit anyway. *)

val config_of_analysis : Fuzzy.Analysis.config -> config
(** Defaults: pipeline from {!Online.Pipeline.default} with the given
    analysis config; queue 64; 32 connections; no timeout;
    {!Wire.default_max_payload}; one IO shard; {!default_backlog}; best
    evloop backend; admission off; no store counters; no metrics
    endpoint. *)

val run : ?on_event:(string -> unit) -> config -> address -> Metrics.snapshot
(** Bind, listen and serve until drained ([Shutdown] request or
    SIGINT/SIGTERM).  [on_event] receives human-readable lifecycle lines
    ("listening on ...", "draining ..."); the library itself never prints.
    Returns the final metrics snapshot. *)
