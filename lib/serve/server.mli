(** The analysis server: a single-threaded [Unix.select] IO loop that
    accepts framed {!Protocol} requests and fans the heavy ones out onto
    the shared {!Parallel.Pool}.

    {b Concurrency shape.}  All socket IO, parsing and bookkeeping happen
    on one thread; only request {e work} (workload analysis) runs on pool
    workers, which hand results back through a mutex-guarded completion
    queue and a self-wake pipe.  Responses are computed in whatever order
    the pool finishes them but written strictly in per-connection request
    order ({!Session}), so a conversation's bytes are a pure function of
    the requests — bit-identical for every [--jobs] value.

    {b Backpressure.}  Heavy requests wait in a bounded FIFO; when it is
    full the server answers [Error Overloaded] immediately instead of
    queueing without bound.  Identical in-flight requests are batched:
    the work runs once and every subscriber receives the same encoded
    response ("pool-backed batching").

    {b Deadlines.}  [request_timeout] bounds how long a request may wait
    in the queue: expiry is checked {e before} submission, so a request
    either times out while waiting (deterministically, for [--timeout 0])
    or runs to completion — a result is never half-delivered.

    {b Shutdown.}  A [Shutdown] request or SIGINT/SIGTERM starts a drain:
    new connections are refused, new heavy requests answer [Overloaded],
    queued and in-flight work completes, owed responses flush, then the
    server closes everything and returns its final metrics snapshot. *)

type address = Unix_socket of string | Tcp of int

type config = {
  analysis : Fuzzy.Analysis.config;
      (** the configuration every served analysis runs under (seed,
          scale, interval geometry, [jobs] = pool width) *)
  pipeline : Online.Pipeline.config;  (** per-session ingest streams *)
  queue_capacity : int;  (** bounded heavy-request queue *)
  max_connections : int;  (** cap; excess connections get [Busy] *)
  request_timeout : float option;  (** max seconds queued, [None] = no limit *)
  max_payload : int;  (** per-frame payload cap in bytes *)
  store_counters : unit -> (int * int * int * int) option;
      (** (hits, misses, writes, corrupt) of the attached persistent
          result store, or [None] when serving without one.  Polled
          before each metrics snapshot; a callback so serve does not
          depend on lib/store. *)
}

val config_of_analysis : Fuzzy.Analysis.config -> config
(** Defaults: pipeline from {!Online.Pipeline.default} with the given
    analysis config; queue 64; 32 connections; no timeout;
    {!Wire.default_max_payload}; no store counters. *)

val run : ?on_event:(string -> unit) -> config -> address -> Metrics.snapshot
(** Bind, listen and serve until drained ([Shutdown] request or
    SIGINT/SIGTERM).  [on_event] receives human-readable lifecycle lines
    ("listening on ...", "draining ..."); the library itself never prints.
    Returns the final metrics snapshot. *)
