(** Versioned, checksummed, length-prefixed binary framing for the
    analysis server, plus the deterministic primitive codec the
    {!Protocol} messages are built from.

    A frame is a fixed 14-byte header followed by the payload:

    {v
      bytes 0-3    magic "FZRP"
      bytes 4-5    protocol version (big-endian u16)
      bytes 6-9    payload length  (big-endian u32)
      bytes 10-13  Adler-32 checksum of the payload (big-endian u32)
      bytes 14..   payload
    v}

    Every integer is written big-endian with a fixed width and floats are
    written as their IEEE-754 bit patterns, so encoding is a pure
    function of the value — the same message encodes to the same bytes
    on every platform, which is what lets the test suite compare server
    responses with [cmp]. *)

val version : int
(** Current protocol version, written into every frame header. *)

val header_len : int
(** 14 bytes. *)

val default_max_payload : int
(** 16 MiB — frames declaring more are rejected before any allocation. *)

type error =
  | Bad_magic
  | Bad_version of int  (** version found in the header *)
  | Oversized of int  (** declared payload length above the cap *)
  | Bad_checksum
  | Truncated  (** fewer bytes than the header declares (or no header) *)

val error_to_string : error -> string

val adler32 : string -> int
(** Adler-32 of the whole string (RFC 1950), in [0, 2^32). *)

val encode : string -> string
(** [encode payload] is the full frame: header followed by [payload]. *)

val decode : ?max_payload:int -> string -> (string, error) result
(** Decode a complete frame back to its payload.  Rejects bad magic,
    foreign versions, oversized declarations, length mismatches and
    checksum failures. *)

val decode_header : ?max_payload:int -> string -> (int * int, error) result
(** [decode_header bytes] validates the 14-byte header at the start of
    [bytes] and returns [(payload_len, checksum)].  [Error Truncated] if
    fewer than {!header_len} bytes are given. *)

val check_payload : string -> checksum:int -> bool

(** {1 Blocking frame transport}

    Used by the client library and the tests; the server reads frames
    incrementally through {!Session}. *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame the payload and write it fully ([Unix] write loop). *)

val read_frame : ?max_payload:int -> Unix.file_descr -> (string, error) result
(** Read exactly one frame, blocking; EOF mid-frame is [Truncated]. *)

(** {1 Primitive codec}

    The deterministic little language every {!Protocol} message is
    encoded with.  Readers raise {!Decode_error} on malformed input;
    {!Protocol} catches it at the message boundary. *)

exception Decode_error of string

module Enc : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit

  val int : t -> int -> unit
  (** 8-byte big-endian two's complement. *)

  val float : t -> float -> unit
  (** IEEE-754 bit pattern, 8 bytes. *)

  val string : t -> string -> unit
  (** Length-prefixed. *)

  val bool : t -> bool -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val contents : t -> string
end

module Dec : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val int : t -> int
  val float : t -> float
  val string : t -> string
  val bool : t -> bool
  val list : t -> (t -> 'a) -> 'a list
  val expect_end : t -> unit
  (** @raise Decode_error if any input remains. *)
end
