(** The server's Prometheus exposition: every family [GET /metrics]
    serves, in fixed order.

    A thin mapping from {!Metrics.snapshot} (plus the live gauges the
    snapshot doesn't carry) into the {!Metrics_http.Expo} model.  Pure —
    the HTTP layer calls it under the server's core lock and writes the
    string out. *)

val render :
  snapshot:Metrics.snapshot ->
  latency:Metrics.hist_snapshot list ->
  queue_depth:int ->
  inflight:int ->
  draining:bool ->
  string
(** [queue_depth] and [inflight] are the instantaneous gauges (the
    snapshot only records their high-water marks); [draining] is true
    between a shutdown request and the last queued response. *)
