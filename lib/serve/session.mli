(** Per-connection server state: the incremental frame decoder, the
    in-order response ledger and the connection's optional streaming
    pipeline.

    Responses may be {e computed} out of order (heavy requests fan out
    onto the pool), but they are {e written} strictly in request order:
    every parsed request is assigned the next sequence number and the
    writer only sends the frame for [next_to_write].  That per-connection
    FIFO discipline — plus response payloads being pure functions of the
    request — is what makes concurrent clients observe byte-identical
    conversations at every [--jobs] value. *)

type t

val create : id:int -> peer:string -> Unix.file_descr -> t
(** [peer] is the connection's admission identity: the client IP for TCP
    connections (so one host shares one token bucket), or a per-connection
    label for Unix-socket peers. *)

val id : t -> int
val fd : t -> Unix.file_descr
val peer : t -> string

(** {1 Reading} *)

val feed : t -> bytes -> int -> unit
(** Append the first [n] bytes just read from the socket. *)

val next_frame : t -> max_payload:int -> (string option, Wire.error) result
(** Extract the next complete frame's payload, if one is buffered.
    [Ok None] means "need more bytes".  A checksum/magic/version/size
    error poisons the connection (the server answers [Bad_request] and
    closes): resynchronising inside a corrupt byte stream is guesswork. *)

(** {1 In-order responses} *)

val alloc_seq : t -> int
(** Sequence number for a request just parsed. *)

val put_response : t -> seq:int -> string -> unit
(** Record the encoded response frame for [seq] (computed in any order). *)

val next_write : t -> (string * int) option
(** The frame for the lowest unwritten sequence number plus the offset
    of its first unwritten byte, if ready.  The offset is non-zero when
    a previous non-blocking write sent only part of the frame. *)

val advance : t -> int -> unit
(** Record that [n] more bytes of the current {!next_write} frame were
    written; once the whole frame is out, move to the next sequence
    number.  A no-op when no frame is in flight — the writer only calls
    it straight after a [Some] from {!next_write}, and total beats a
    raise that would have to cross the event loop (G003). *)

val has_pending : t -> bool
(** Responses still owed (allocated but unwritten sequence numbers). *)

val has_output : t -> bool
(** Bytes ready to write right now (the next in-order frame is
    computed).  Implies {!has_pending}; the converse needn't hold while
    the response is still being computed on the pool. *)

(** {1 Pipeline and lifecycle} *)

val pipeline : t -> Online.Pipeline.t option
val open_pipeline : t -> Online.Pipeline.t -> unit
val close_pipeline : t -> unit

val mark_close : t -> unit
(** Close once every owed response has been written. *)

val closing : t -> bool
