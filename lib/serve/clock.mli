(** The serving layer's one sanctioned clock.

    The D002 lint rule bans wall-clock reads outside [bench/] because
    analysis results must be pure functions of (config, seed).  The
    server, however, legitimately needs time for {e control flow}:
    request deadlines, queue-wait expiry and drain timeouts.  This module
    is the single blessed call site (the D002 analogue of [Stats.Rng] for
    D001 and [Stats.Det] for D003): every clock read in [lib/serve] goes
    through {!now}, and none of the values ever feed an analytic result —
    a timed-out request is answered with a [Timeout] {e error}, never
    with partial data, so response payloads stay bit-identical across
    machines, loads and [--jobs] values. *)

val now : unit -> float
(** Seconds since the Unix epoch, as a float.  Used only to arm and test
    request deadlines; never recorded in responses or metrics. *)

val expired : deadline:float option -> bool
(** [expired ~deadline] is [true] when [deadline] is [Some d] and the
    clock has passed [d].  [None] never expires. *)
