(* One record per live connection.  The input side is a byte accumulator
   the frame decoder chews from the front; the output side is a seq ->
   frame table drained strictly in order. *)

type t = {
  id : int;
  fd : Unix.file_descr;
  peer : string;  (* admission identity: client IP, or "conn:<id>" *)
  mutable inbuf : Bytes.t;
  mutable in_len : int;
  mutable next_seq : int;  (* next sequence number to assign *)
  mutable next_out : int;  (* next sequence number to write *)
  mutable out_off : int;  (* bytes of the current frame already written *)
  ready : (int, string) Hashtbl.t;  (* seq -> encoded frame *)
  mutable pipeline : Online.Pipeline.t option;
  mutable closing : bool;
}

let create ~id ~peer fd =
  {
    id;
    fd;
    peer;
    inbuf = Bytes.create 4096;
    in_len = 0;
    next_seq = 0;
    next_out = 0;
    out_off = 0;
    ready = Hashtbl.create 8;
    pipeline = None;
    closing = false;
  }

let id t = t.id
let fd t = t.fd
let peer t = t.peer

let feed t src n =
  let need = t.in_len + n in
  if need > Bytes.length t.inbuf then begin
    let grown = Bytes.create (max need (2 * Bytes.length t.inbuf)) in
    Bytes.blit t.inbuf 0 grown 0 t.in_len;
    t.inbuf <- grown
  end;
  Bytes.blit src 0 t.inbuf t.in_len n;
  t.in_len <- t.in_len + n

let consume t n =
  Bytes.blit t.inbuf n t.inbuf 0 (t.in_len - n);
  t.in_len <- t.in_len - n

let next_frame t ~max_payload =
  if t.in_len < Wire.header_len then Ok None
  else
    let header = Bytes.sub_string t.inbuf 0 Wire.header_len in
    match Wire.decode_header ~max_payload header with
    | Error _ as e -> e
    | Ok (len, checksum) ->
        if t.in_len < Wire.header_len + len then Ok None
        else
          let payload = Bytes.sub_string t.inbuf Wire.header_len len in
          if Wire.check_payload payload ~checksum then begin
            consume t (Wire.header_len + len);
            Ok (Some payload)
          end
          else Error Wire.Bad_checksum

let alloc_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let put_response t ~seq frame = Hashtbl.replace t.ready seq frame

let next_write t =
  Option.map (fun frame -> (frame, t.out_off)) (Hashtbl.find_opt t.ready t.next_out)

let advance t n =
  match Hashtbl.find_opt t.ready t.next_out with
  | None -> ()
  | Some frame ->
      t.out_off <- t.out_off + n;
      if t.out_off >= String.length frame then begin
        Hashtbl.remove t.ready t.next_out;
        t.next_out <- t.next_out + 1;
        t.out_off <- 0
      end

let has_pending t = t.next_out < t.next_seq
let has_output t = Hashtbl.mem t.ready t.next_out
let pipeline t = t.pipeline
let open_pipeline t p = t.pipeline <- Some p
let close_pipeline t = t.pipeline <- None
let mark_close t = t.closing <- true
let closing t = t.closing
