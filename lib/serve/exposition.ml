(* Map the server's metrics into the Prometheus exposition model.

   One function, one shape: every family the endpoint serves is listed
   here, so the golden transcript in test/golden/ and the format lint in
   scripts/check_metrics.sh both pin this module's output.  Names use
   the narrowed [a-z_:]+ charset Expo enforces (no digits — per-shard
   and per-verb identity travels in labels). *)

module Expo = Metrics_http.Expo

let counter name help v =
  {
    Expo.name;
    help;
    kind = Expo.Counter;
    samples = [ { Expo.labels = []; value = Expo.Value (float_of_int v) } ];
  }

let gauge name help v =
  {
    Expo.name;
    help;
    kind = Expo.Gauge;
    samples = [ { Expo.labels = []; value = Expo.Value (float_of_int v) } ];
  }

let labeled_counter name help ~label pairs =
  {
    Expo.name;
    help;
    kind = Expo.Counter;
    samples =
      List.map
        (fun (k, v) ->
          { Expo.labels = [ (label, k) ]; value = Expo.Value (float_of_int v) })
        pairs;
  }

let render ~(snapshot : Metrics.snapshot) ~latency ~queue_depth ~inflight
    ~draining =
  let s = snapshot in
  let families =
    [
      counter "repro_connections_accepted_total"
        "Connections accepted across all IO shards." s.connections_accepted;
      gauge "repro_connections_active" "Currently open client sessions."
        s.connections_active;
      counter "repro_connections_refused_total"
        "Connections turned away at the max-connections cap."
        s.connections_refused;
      counter "repro_requests_total" "Requests decoded and admitted to routing."
        s.requests_total;
      labeled_counter "repro_requests_kind_total"
        "Requests decoded, by verb." ~label:"kind" s.requests_by_kind;
      counter "repro_responses_ok_total" "Successful responses sent."
        s.responses_ok;
      labeled_counter "repro_responses_error_total"
        "Error responses sent, by error code." ~label:"code" s.responses_error;
      counter "repro_batch_joined_total"
        "Requests answered by joining an identical in-flight computation."
        s.batch_joined;
      counter "repro_cache_hits_total"
        "Requests served from the in-memory analysis cache." s.cache_hits;
      counter "repro_cache_misses_total"
        "Requests that missed the in-memory analysis cache." s.cache_misses;
      counter "repro_store_hits_total"
        "Requests served from the persistent result store." s.store_hits;
      counter "repro_store_misses_total"
        "Persistent-store lookups that found no valid entry." s.store_misses;
      counter "repro_store_writes_total"
        "New entries persisted to the result store." s.store_writes;
      counter "repro_store_corrupt_total"
        "Persistent-store entries quarantined as invalid." s.store_corrupt;
      gauge "repro_queue_depth" "Heavy requests waiting in the bounded queue."
        queue_depth;
      gauge "repro_queue_high_water"
        "Deepest the bounded request queue has been." s.queue_high_water;
      gauge "repro_inflight" "Pool tasks currently outstanding." inflight;
      gauge "repro_inflight_high_water"
        "Most pool tasks outstanding at once." s.inflight_high_water;
      gauge "repro_io_shards" "Accept/IO domains this server runs." s.io_shards;
      labeled_counter "repro_shard_accepted_total"
        "Connections assigned, by two-digit IO shard id." ~label:"shard"
        s.accepted_by_shard;
      counter "repro_admission_admitted_total"
        "Heavy requests past every admission gate." s.admission_admitted;
      counter "repro_admission_rate_limited_total"
        "Requests refused with an empty peer token bucket."
        s.admission_rate_limited;
      counter "repro_admission_too_large_total"
        "Requests refused as over the size budget." s.admission_too_large;
      counter "repro_admission_breaker_rejected_total"
        "Requests refused by an open peer circuit breaker."
        s.admission_breaker_rejected;
      counter "repro_admission_breaker_trips_total"
        "Times any peer circuit breaker opened." s.admission_breaker_trips;
      gauge "repro_draining"
        "One while a graceful shutdown is draining queued work, else zero."
        (if draining then 1 else 0);
      {
        Expo.name = "repro_request_duration_seconds";
        help = "Request wall-clock latency by verb, request decode to response.";
        kind = Expo.Histogram;
        samples =
          List.map
            (fun (h : Metrics.hist_snapshot) ->
              {
                Expo.labels = [ ("kind", h.hist_kind) ];
                value =
                  Expo.Hist
                    {
                      Expo.bounds = Metrics.bucket_bounds;
                      counts = h.hist_buckets;
                      sum = h.hist_sum;
                      count = h.hist_count;
                    };
              })
            latency;
      };
    ]
  in
  Expo.render families
