type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the advanced state through two
   xor-shift-multiply rounds. *)
let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = next_raw t

let split t =
  let s = next_raw t in
  { state = s }

(* SplitMix64 finaliser, used to mix label bytes into a seed. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let split_label seed label =
  (* FNV-1a over the label bytes, folded into the master seed and mixed.
     Independent of evaluation order, so parallel workloads derived from
     the same master seed get the same stream no matter how they are
     scheduled. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    label;
  { state = mix64 (Int64.add (Int64.mul (Int64.of_int seed) golden_gamma) !h) }

let bits t = Int64.to_int (Int64.shift_right_logical (next_raw t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_raw t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
