(** Fixed-width bin histograms over floats.

    Used for spread plots (Figures 3, 9, 11) and for summarising CPI
    distributions in reports. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Values outside [\[lo, hi)] are clamped into the first / last bin. *)

val add : t -> float -> unit
val count : t -> int -> int
val total : t -> int
val mode_bin : t -> int
(** Index of the fullest bin (ties broken towards lower index). *)

