(** Deterministic hash-table traversal.

    [Hashtbl.iter]/[fold]/[to_seq] enumerate in hash-bucket order — stable for
    one binary on one stdlib, but an implementation detail nothing downstream
    may depend on.  Lint rule D003 bans them in [lib/]; this module is the
    blessed replacement. *)

val hashtbl_bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings sorted by key (polymorphic compare, ascending).  Intended for
    tables with unique keys ([Hashtbl.replace]/guarded [add] discipline): with
    duplicate keys the relative order of equal keys is unspecified. *)
