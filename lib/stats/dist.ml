let uniform rng ~lo ~hi = lo +. Rng.float rng (hi -. lo)

let exponential rng ~mean =
  let u = 1.0 -. Rng.float rng 1.0 in
  -.mean *. log u

let normal rng ~mean ~stddev =
  (* Box-Muller; we discard the second variate for simplicity. *)
  let u1 = 1.0 -. Rng.float rng 1.0 in
  let u2 = Rng.float rng 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. Rng.float rng 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let poisson_knuth rng ~mean =
  let l = exp (-.mean) in
  let rec go k p =
    let p = p *. Rng.float rng 1.0 in
    if p <= l then k else go (k + 1) p
  in
  go 0 1.0

(* Walker alias method: O(n) setup, O(1) draws. *)
type categorical = { prob : float array; alias : int array }

let categorical weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Dist.categorical: non-positive total weight";
  Array.iter (fun w -> if w < 0.0 then invalid_arg "Dist.categorical: negative weight") weights;
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 0.0 and alias = Array.make n 0 in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri (fun i p -> Queue.add i (if p < 1.0 then small else large)) scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    Queue.add l (if scaled.(l) < 1.0 then small else large)
  done;
  let flush q = Queue.iter (fun i -> prob.(i) <- 1.0) q in
  flush small;
  flush large;
  { prob; alias }

let categorical_draw t rng =
  let n = Array.length t.prob in
  let i = Rng.int rng n in
  if Rng.float rng 1.0 < t.prob.(i) then i else t.alias.(i)


type zipf = { cat : categorical }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let weights = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s) in
  { cat = categorical weights }

let zipf_draw t rng = categorical_draw t.cat rng
