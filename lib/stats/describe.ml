module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable sum : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; sum = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.sum <- t.sum +. x

  let n t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
  let sample_variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let sum t = t.sum
  let sum_sq_dev t = t.m2

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
      let m2 =
        a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
      in
      {
        n;
        mean;
        m2;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
        sum = a.sum +. b.sum;
      }
end

let of_array xs =
  let acc = Acc.create () in
  Array.iter (Acc.add acc) xs;
  acc

let mean xs = Acc.mean (of_array xs)
let variance xs = Acc.variance (of_array xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Describe.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Describe.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summary xs =
  if Array.length xs = 0 then "n=0"
  else
    let acc = of_array xs in
    Printf.sprintf "n=%d mean=%.4f std=%.4f min=%.4f p50=%.4f max=%.4f" (Acc.n acc)
      (Acc.mean acc) (Acc.stddev acc) (Acc.min acc) (percentile xs 50.0) (Acc.max acc)
