(* The one blessed Hashtbl-traversal site (lint rule D003, the analogue of
   rng.ml for D001): every other module enumerates hash tables through this
   sort, so iteration order is a function of the keys, never of the hash. *)

let hashtbl_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
