type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_of t x =
  let n = Array.length t.counts in
  let raw = int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo)) in
  if raw < 0 then 0 else if raw >= n then n - 1 else raw

let add t x =
  let b = bin_of t x in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1

let count t i = t.counts.(i)
let total t = t.total

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

