type t = { idx : int array; v : float array }

let empty = { idx = [||]; v = [||] }

let of_assoc pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, x) ->
      if i < 0 then invalid_arg "Sparse_vec.of_assoc: negative index";
      let cur = try Hashtbl.find tbl i with Not_found -> 0.0 in
      Hashtbl.replace tbl i (cur +. x))
    pairs;
  let entries = List.filter (fun (_, x) -> x <> 0.0) (Det.hashtbl_bindings tbl) in
  let n = List.length entries in
  let idx = Array.make n 0 and v = Array.make n 0.0 in
  List.iteri
    (fun k (i, x) ->
      idx.(k) <- i;
      v.(k) <- x)
    entries;
  { idx; v }

let of_counts tbl =
  of_assoc (List.map (fun (i, c) -> (i, float_of_int c)) (Det.hashtbl_bindings tbl))

let of_dense a =
  let pairs = ref [] in
  Array.iteri (fun i x -> if x <> 0.0 then pairs := (i, x) :: !pairs) a;
  of_assoc !pairs

let nnz t = Array.length t.idx

let get t i =
  (* Iterative binary search over the sorted index array: this is the
     single hottest lookup in the tree grower (row routing at every
     split) and in prediction, so it avoids call overhead and bounds
     checks on the probe. *)
  let idx = t.idx in
  let lo = ref 0 and hi = ref (Array.length idx - 1) in
  let res = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let m = Array.unsafe_get idx mid in
    if m = i then begin
      res := Array.unsafe_get t.v mid;
      lo := 1;
      hi := 0
    end
    else if m < i then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let max_index t = if nnz t = 0 then -1 else t.idx.(nnz t - 1)

let iter f t =
  for k = 0 to Array.length t.idx - 1 do
    f t.idx.(k) t.v.(k)
  done

let fold f t init =
  let acc = ref init in
  iter (fun i x -> acc := f i x !acc) t;
  !acc

let sum t = Array.fold_left ( +. ) 0.0 t.v
let norm2 t = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.v

let dot_dense t dense =
  let n = Array.length dense in
  let acc = ref 0.0 in
  iter (fun i x -> if i < n then acc := !acc +. (x *. dense.(i))) t;
  !acc

let add_into_dense t dense =
  let n = Array.length dense in
  iter (fun i x -> if i < n then dense.(i) <- dense.(i) +. x) t

let sq_dist_dense t dense ~norm2_dense =
  (* ||v||^2 - 2 v.c + ||c||^2, correcting coordinates where v is nonzero:
     exact and O(nnz). *)
  let d = norm2 t -. (2.0 *. dot_dense t dense) +. norm2_dense in
  Float.max 0.0 d

let to_assoc t = fold (fun i x acc -> (i, x) :: acc) t [] |> List.rev

let map_indices f t = of_assoc (List.map (fun (i, x) -> (f i, x)) (to_assoc t))

let equal a b = a.idx = b.idx && a.v = b.v

