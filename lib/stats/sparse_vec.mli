(** Sparse non-negative count vectors.

    An EIP vector (EIPV) has one dimension per unique EIP in the whole run
    — tens of thousands for server workloads — but each individual interval
    only touches the EIPs that were actually sampled in it (at most the
    number of samples per interval).  This module is the shared currency
    between the sampler, the regression tree and k-means: indices are
    compact feature ids, values are sample counts (stored as floats so the
    same type serves centroid arithmetic). *)

type t
(** Immutable sparse vector.  Indices are strictly increasing; stored values
    are non-zero. *)

val empty : t

val of_assoc : (int * float) list -> t
(** Build from (index, value) pairs.  Duplicate indices are summed; zero
    totals are dropped.  Negative indices are rejected. *)

val of_counts : (int, int) Hashtbl.t -> t
(** Build from a count table (the sampler's per-interval histogram). *)

val of_dense : float array -> t

val nnz : t -> int
(** Number of stored (non-zero) entries. *)

val get : t -> int -> float
(** [get v i] is 0 for absent indices.  O(log nnz) iterative binary
    search — this is the tree grower's row-routing primitive and the
    per-node probe of prediction, so it is kept branch-light. *)

val max_index : t -> int
(** Largest stored index; -1 for the empty vector. *)

val iter : (int -> float -> unit) -> t -> unit
val sum : t -> float
val norm2 : t -> float
(** Squared Euclidean norm. *)

val dot_dense : t -> float array -> float
(** Dot product with a dense vector; indices beyond the dense length
    contribute 0. *)

val add_into_dense : t -> float array -> unit
(** Accumulate the sparse entries into a dense vector (used for centroid
    updates).  Indices beyond the dense length are ignored. *)

val sq_dist_dense : t -> float array -> norm2_dense:float -> float
(** [sq_dist_dense v c ~norm2_dense] is ||v - c||² computed in O(nnz v)
    given the precomputed squared norm of [c]. *)

val to_assoc : t -> (int * float) list
val map_indices : (int -> int) -> t -> t
(** Remap indices (must remain injective and non-negative). *)

val equal : t -> t -> bool
