(** Random-variate samplers built on {!Rng}.

    Workload models use these to shape code-region popularity (Zipf),
    inter-arrival times (exponential), datum skew (normal / lognormal) and
    categorical choices (discrete distributions with an alias table). *)

val uniform : Rng.t -> lo:float -> hi:float -> float
[@@lint.allow "G004"]
(* kept as deliberate API: the primitive the other draws are documented
   against, and the natural entry point for new workload generators. *)

val exponential : Rng.t -> mean:float -> float
(** Exponential variate with the given mean. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian variate via Box-Muller. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float

val geometric : Rng.t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; [p] in
    (0, 1]. *)

val poisson_knuth : Rng.t -> mean:float -> int
(** Poisson variate (Knuth's product method; adequate for small means). *)

type zipf
(** Precomputed Zipf(s, n) sampler over ranks [0..n-1]. *)

val zipf : n:int -> s:float -> zipf
(** [zipf ~n ~s] prepares a sampler where rank [k] has probability
    proportional to [1/(k+1)^s].  [s = 0] degenerates to uniform. *)

val zipf_draw : zipf -> Rng.t -> int

type categorical
(** Discrete distribution over [0..n-1] with given weights, sampled in
    O(1) via Walker's alias method. *)

val categorical : float array -> categorical
(** Weights must be non-negative with a positive sum. *)

val categorical_draw : categorical -> Rng.t -> int
