(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele, Lea & Flood 2014): a tiny, fast, statistically sound
    64-bit generator with cheap stream splitting, which we use to give every
    workload thread its own independent stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  The two
    streams are statistically independent. *)

val split_label : int -> string -> t
(** [split_label seed label] derives a generator from a master [seed] and
    a textual [label] (e.g. a workload name).  The stream depends only on
    the pair — not on when or where it is created — so concurrent tasks
    seeded this way produce results independent of scheduling order.
    Distinct labels give independent streams; the same pair is always
    reproducible. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val bits : t -> int
(** 62 uniform non-negative bits as an OCaml [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
