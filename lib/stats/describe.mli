(** Descriptive statistics.

    [Acc] is a single-pass Welford accumulator used throughout the simulator
    (it is numerically stable for the long, near-constant CPI streams that
    low-variance workloads produce).  The array functions are convenience
    wrappers for post-hoc analysis of collected series. *)

module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  (** Mean of the observations; 0 when empty. *)

  val variance : t -> float
  (** Population variance (the paper's E is a population variance); 0 when
      fewer than 2 observations. *)

  val sample_variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val sum : t -> float
  val sum_sq_dev : t -> float
  (** Sum of squared deviations from the mean (SSE of the mean
      estimator). *)

  val merge : t -> t -> t
  (** Combine two accumulators (parallel Welford / Chan et al.). *)
end

val mean : float array -> float
val variance : float array -> float
(** Population variance; 0 for arrays of length < 2. *)


val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]; linear interpolation between
    order statistics.  The input array is not modified. *)

val summary : float array -> string
(** One-line human-readable summary: n/mean/std/min/median/max. *)
